// Package nilrecv checks that exported pointer-receiver methods on types
// annotated //xg:nilsafe guard the receiver against nil before using it.
// The obs tracer hands out nil *Trace values when tracing is disabled and
// every instrumentation site calls methods on them unconditionally; a new
// method that touches a field before the nil check turns "tracing off" into
// a panic on the first request.
//
// The rule is strict and therefore simple: the first statement that
// mentions the receiver at all must be a terminating nil guard —
//
//	if t == nil { return ... }            // or panic(...)
//	if t == nil || n <= 0 { return ... }  // extra disjuncts allowed
//
// Methods that never mention the receiver pass trivially. Unexported
// methods are not checked: they are internal helpers the guarded exported
// surface is expected to shield (and flagging them would force redundant
// double-checks on hot paths).
package nilrecv

import (
	"go/ast"
	"go/token"
	"go/types"

	"xgrammar/internal/analysis"
)

// Analyzer is the nilrecv analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nilrecv",
	Doc:  "exported methods on //xg:nilsafe types must nil-check the receiver first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	safe := analysis.NilSafeTypes(pass.Pkg)
	if len(safe) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			tname, ptr := receiverType(fn)
			if !ptr || !safe[tname] {
				continue
			}
			checkMethod(pass, fn, tname)
		}
	}
	return nil
}

// receiverType returns the receiver's named type and whether it is a
// pointer receiver.
func receiverType(fn *ast.FuncDecl) (string, bool) {
	if len(fn.Recv.List) != 1 {
		return "", false
	}
	t := fn.Recv.List[0].Type
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	switch e := star.X.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr: // generic receiver *T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl, tname string) {
	names := fn.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return // receiver unnamed: body cannot touch it
	}
	recv := pass.Pkg.Info.Defs[names[0]]
	if recv == nil {
		return
	}
	for _, stmt := range fn.Body.List {
		use := firstRecvUse(pass, stmt, recv)
		if use == nil {
			continue
		}
		if isNilGuard(pass, stmt, recv) {
			return // guard precedes every other receiver use
		}
		pass.Reportf(use.Pos(),
			"method %s on nil-safe *%s uses receiver %s before a nil check",
			fn.Name.Name, tname, names[0].Name)
		return
	}
}

// firstRecvUse returns the first identifier in stmt resolving to the
// receiver object, in source order.
func firstRecvUse(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == recv {
			found = id
			return false
		}
		return true
	})
	return found
}

// isNilGuard reports whether stmt is `if <cond> { ...exit }` where cond
// contains `recv == nil` as a top-level || disjunct and the body
// unconditionally exits (ends in return or panic).
func isNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if !hasNilDisjunct(pass, ifs.Cond, recv) {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func hasNilDisjunct(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return hasNilDisjunct(pass, e.X, recv)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return hasNilDisjunct(pass, e.X, recv) || hasNilDisjunct(pass, e.Y, recv)
		}
		if e.Op == token.EQL {
			return (isRecv(pass, e.X, recv) && isNil(pass, e.Y)) ||
				(isNil(pass, e.X) && isRecv(pass, e.Y, recv))
		}
	}
	return false
}

func isRecv(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.Pkg.Info.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	return pass.Pkg.Info.Types[e].IsNil()
}
