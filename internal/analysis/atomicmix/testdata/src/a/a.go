// Package a is golden data for the atomicmix analyzer. Server mirrors the
// pre-typed-atomic shape of the project's server counters: a field bumped
// with sync/atomic on the hot path but read with a plain load in the stats
// handler — the exact mixed-access race this analyzer exists to catch.
package a

import "sync/atomic"

// Server holds one mixed-access counter (requests) and one consistently
// plain counter (errors).
type Server struct {
	requests int64
	errors   int64
}

// Handle is the atomic side of the mix.
func (s *Server) Handle() {
	atomic.AddInt64(&s.requests, 1)
}

// Stats is the plain side: the pre-fix stats-handler bug.
func (s *Server) Stats() int64 {
	return s.requests // want `non-atomic access to requests`
}

// Reset writes plainly, racing Handle.
func (s *Server) Reset() {
	s.requests = 0 // want `non-atomic access to requests`
}

// StatsOK reads atomically: sanctioned.
func (s *Server) StatsOK() int64 {
	return atomic.LoadInt64(&s.requests)
}

// Errors is consistent plain access: errors never meets sync/atomic.
func (s *Server) Errors() int64 {
	s.errors++
	return s.errors
}

// hits is a package-level mixed-access variable.
var hits int64

// Hit is the atomic side.
func Hit() { atomic.AddInt64(&hits, 1) }

// Hits is the plain side.
func Hits() int64 {
	return hits // want `non-atomic access to hits`
}

// HitsAllowed pins suppression with a justified //xg:allow.
func HitsAllowed() int64 {
	return hits //xg:allow atomicmix: read at exit after every writer goroutine has joined
}

// Typed atomics never trigger the analyzer: their methods carry a receiver,
// not an &addr argument.
var typedHits atomic.Int64

// TypedHit and TypedHits are both fine.
func TypedHit()        { typedHits.Add(1) }
func TypedHits() int64 { return typedHits.Load() }
