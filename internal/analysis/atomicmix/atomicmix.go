// Package atomicmix flags mixed atomic and plain access to the same
// variable. A counter read with sync/atomic anywhere must be read and
// written with sync/atomic everywhere — one plain `s.n++` next to an
// `atomic.AddInt64(&s.n, 1)` is a data race the race detector only catches
// when a test happens to interleave the two.
//
// The analyzer works module-wide: pass one collects every struct field and
// package-level variable whose address is taken by a sync/atomic call in
// any package of the module; pass two flags every other (non-atomic) use of
// those variables in the package under analysis. Typed atomics
// (sync/atomic.Int64 and friends) make this class of bug impossible and
// are the preferred fix; this analyzer exists for the transition period and
// for call sites that cannot use them.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"xgrammar/internal/analysis"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain access to variables that are accessed atomically elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1 (module-wide): variables addressed by sync/atomic calls, and
	// the argument expressions of those calls (sanctioned uses).
	atomicVars := map[types.Object]token.Position{}
	sanctioned := map[*ast.Ident]bool{}
	for _, pkg := range pass.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pkg.Info, call) || len(call.Args) == 0 {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				id := baseIdent(addr.X)
				if id == nil {
					return true
				}
				obj := varObject(pkg.Info, addr.X)
				if obj == nil {
					return true
				}
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = pkg.Fset.Position(call.Pos())
				}
				sanctioned[id] = true
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2 (this package): any other use of those variables is mixed
	// access. The identifier inside the &x.f argument of an atomic call is
	// sanctioned; everything else — plain reads, writes, address escapes —
	// is flagged.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			var obj types.Object
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					id, obj = e.Sel, sel.Obj()
				} else {
					id = e.Sel
					obj = pass.Pkg.Info.Uses[e.Sel]
				}
			case *ast.Ident:
				id, obj = e, pass.Pkg.Info.Uses[e]
			default:
				return true
			}
			first, ok := atomicVars[obj]
			if !ok || sanctioned[id] {
				return true
			}
			pass.Reportf(id.Pos(),
				"non-atomic access to %s, which is accessed atomically at %s; use sync/atomic consistently (or a typed atomic)",
				id.Name, first)
			return false
		})
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a sync/atomic package-level
// function that takes the address of its operand (Add*, Load*, Store*,
// Swap*, CompareAndSwap*).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Methods on atomic.Int64 etc. have a receiver; only package functions
	// take &x.
	return fn.Type().(*types.Signature).Recv() == nil
}

// varObject resolves the addressed expression (x, s.f, s.a.b) to the
// variable object of its final component.
func varObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return varObject(info, e.X)
	}
	return nil
}

// baseIdent returns the identifier naming the final component of an
// addressed expression (f in &s.f, x in &x).
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return baseIdent(e.X)
	}
	return nil
}
