package atomicmix_test

import (
	"testing"

	"xgrammar/internal/analysis/analysistest"
	"xgrammar/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "a")
}
