// Package lockhold flags blocking operations performed while a sync.Mutex
// or sync.RWMutex is held: channel sends and receives, select statements,
// ranging over a channel, sync.WaitGroup.Wait / sync.Cond.Wait, time.Sleep,
// and calls into net, net/http, or the model-backend layer. Holding the
// batcher's or grammar cache's lock across any of these turns one slow
// consumer (or one slow backend RTT) into a stall for every request behind
// the lock — the singleflight cache is carefully written to unlock before
// waiting on a flight, and this analyzer keeps it (and future code) that
// way.
//
// The analysis is a per-function, branch-local scan: Lock()/Unlock() pairs
// are tracked linearly through each block, a branch gets a copy of the held
// set (an early-unlock-and-return inside an if does not release the lock on
// the fall-through path), defer mu.Unlock() holds to function end, and
// function literals are scanned with a fresh (empty) held set. It is
// deliberately intraprocedural — a helper called with the lock held is not
// followed — so findings are high-confidence and the invariant stays
// auditable function by function.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xgrammar/internal/analysis"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flag channel ops, Wait, sleeps, and network/backend calls while holding a mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				s := &scanner{pass: pass}
				s.block(fn.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
}

// block scans stmts sequentially, mutating held (mutex expr -> Lock
// position) as Lock/Unlock calls appear at this nesting level. Nested
// blocks scan with a copy so branch-local unlocks stay branch-local.
func (s *scanner) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		s.stmt(stmt, held)
	}
}

func (s *scanner) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if mu, kind := s.lockCall(st.X); kind != 0 {
			if kind > 0 {
				held[mu] = st.Pos()
			} else {
				delete(held, mu)
			}
			return
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the body;
		// no change to held. Other deferred calls are not scanned as
		// lock-holding work (they run at return).
		if _, kind := s.lockCall(st.Call); kind == 0 {
			s.expr(st.Call, held)
		}
	case *ast.SendStmt:
		s.flag(st.Pos(), "channel send", held)
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.SelectStmt:
		s.flag(st.Pos(), "select", held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.block(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if t := s.pass.Pkg.Info.Types[st.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				s.flag(st.Pos(), "range over channel", held)
			}
		}
		s.expr(st.X, held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		s.block(st.Body.List, copyHeld(held))
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.stmt(st.Assign, held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.CaseClause:
		for _, e := range st.List {
			s.expr(e, held)
		}
		s.block(st.Body, copyHeld(held))
	case *ast.CommClause:
		if st.Comm != nil {
			s.stmt(st.Comm, copyHeld(held))
		}
		s.block(st.Body, copyHeld(held))
	case *ast.BlockStmt:
		s.block(st.List, copyHeld(held))
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs without this function's locks; its
		// literal (if any) is scanned fresh by expr.
		s.expr(st.Call.Fun, held)
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	}
}

// expr walks an expression flagging blocking operations, without descending
// into function literals (their bodies run under their own lock discipline).
func (s *scanner) expr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.block(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.flag(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			s.call(n, held)
		}
		return true
	})
}

func (s *scanner) call(call *ast.CallExpr, held map[string]token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := s.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Same-package helpers are part of the locked region's own code, not a
	// blocking boundary; the net/backend heuristics below only apply to
	// calls that leave the package.
	if fn.Pkg() == s.pass.Pkg.Types {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait":
		s.flag(call.Pos(), "sync."+recvTypeName(fn)+".Wait", held)
	case path == "time" && fn.Name() == "Sleep":
		s.flag(call.Pos(), "time.Sleep", held)
	case path == "net" || strings.HasPrefix(path, "net/"):
		s.flag(call.Pos(), path+"."+fn.Name()+" call", held)
	case strings.Contains(path, "internal/backend"):
		s.flag(call.Pos(), "backend call "+fn.Name(), held)
	}
}

// lockCall classifies e as a Lock/RLock (+1) or Unlock/RUnlock (-1) call on
// a sync.Mutex/RWMutex, returning the locked expression's printed form.
func (s *scanner) lockCall(e ast.Expr) (string, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := s.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), 1
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), -1
	}
	return "", 0
}

func (s *scanner) flag(pos token.Pos, what string, held map[string]token.Pos) {
	for mu, lockPos := range held {
		s.pass.Reportf(pos, "%s while holding %s (locked at %s)",
			what, mu, s.pass.Pkg.Fset.Position(lockPos))
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "?"
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
