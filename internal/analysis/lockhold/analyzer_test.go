package lockhold_test

import (
	"testing"

	"xgrammar/internal/analysis/analysistest"
	"xgrammar/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "a")
}
