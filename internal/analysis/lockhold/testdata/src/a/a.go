// Package a is golden data for the lockhold analyzer: blocking operations —
// channel ops, Wait, sleeps, network and model-backend calls — performed
// while a mutex is held. GoodFlight mirrors the gramcache singleflight
// discipline (unlock before waiting) that the analyzer exists to preserve.
package a

import (
	"net"
	"sync"
	"time"

	"xgrammar/internal/backend"
)

// B bundles the lock and the blocking surfaces under test.
type B struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// BadSend sends on a channel under the lock.
func (b *B) BadSend(v int) {
	b.mu.Lock()
	b.ch <- v // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

// GoodSend releases first.
func (b *B) GoodSend(v int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- v
}

// BadRecv receives under a deferred unlock, which holds to function end.
func (b *B) BadRecv() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive while holding b\.mu`
}

// BadWait waits on a WaitGroup under the lock.
func (b *B) BadWait() {
	b.mu.Lock()
	b.wg.Wait() // want `sync\.WaitGroup\.Wait while holding b\.mu`
	b.mu.Unlock()
}

// BadSleep sleeps under the lock.
func (b *B) BadSleep() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding b\.mu`
	b.mu.Unlock()
}

// BadDial performs network I/O under the lock.
func (b *B) BadDial() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := net.Dial("tcp", "localhost:1") // want `net\.Dial call while holding b\.mu`
	return err
}

// BadBackend calls into the model backend under the lock — the loopback
// handler's pre-fix shape.
func (b *B) BadBackend(bk backend.Backend) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, _ = bk.Open(backend.Request{}) // want `backend call Open while holding b\.mu`
}

// BadSelect blocks in a select under the lock.
func (b *B) BadSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select while holding b\.mu`
	default:
	}
}

// BadRange ranges over a channel under the lock.
func (b *B) BadRange() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for v := range b.ch { // want `range over channel while holding b\.mu`
		n += v
	}
	return n
}

// BadBranch: an early-unlock-and-return inside a branch does not release
// the lock on the fall-through path.
func (b *B) BadBranch(early bool, v int) {
	b.mu.Lock()
	if early {
		b.mu.Unlock()
		return
	}
	b.ch <- v // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

// GoodLit: a function literal's body runs under its own lock discipline and
// is scanned with an empty held set.
func (b *B) GoodLit(v int) {
	b.mu.Lock()
	f := func() { b.ch <- v }
	b.mu.Unlock()
	f()
}

// GoodFlight mirrors the singleflight pattern: snapshot under the lock,
// release, then wait.
func (b *B) GoodFlight() int {
	b.mu.Lock()
	ch := b.ch
	b.mu.Unlock()
	return <-ch
}

// AllowedSend pins suppression with a justified //xg:allow.
func (b *B) AllowedSend(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v //xg:allow lockhold: ch is buffered with capacity reserved before Lock, the send cannot block
}
