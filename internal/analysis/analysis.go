// Package analysis is a small static-analysis framework for enforcing the
// invariants the serving runtime claims in prose and benchmarks: 0-alloc
// steady-state decode steps, nil-receiver-safe tracer methods, atomic-only
// counter access, no wall-clock reads on the per-token hot path, and no
// blocking operations under a mutex.
//
// It mirrors the shape of golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, a multichecker-style driver in cmd/xglint, and golden-file
// tests in the analysistest subpackage) but is built entirely on the
// standard library: packages are loaded with `go list -export`, module
// sources are typechecked with go/types, and standard-library dependencies
// are imported from compiler export data.
//
// Analyzers key off source annotations:
//
//	//xg:hotpath   on a function: the body must stay allocation-free and
//	               clock-free (hotpathalloc, noclock).
//	//xg:nilsafe   on a type: exported pointer-receiver methods must guard
//	               the receiver against nil before touching fields (nilrecv).
//
// A finding is suppressed by a justified allow comment on the same line or
// the line above:
//
//	//xg:allow <analyzer>: <reason>
//
// The reason is mandatory; an allow comment without one is ignored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run is invoked once per loaded package; an
// analyzer needing cross-package context reaches it through Pass.Module.
type Analyzer struct {
	// Name identifies the analyzer in output and in //xg:allow comments.
	Name string
	// Doc is a short description, shown by `xglint -list`.
	Doc string
	// Run reports findings for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one typechecked package: syntax, type information, and the
// shared file set.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the full set of typechecked packages an analysis run sees.
// Packages of the same load share one FileSet and one type-object world, so
// a types.Object found in one package compares equal to the same object
// seen from another.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Module is the whole loaded module, for cross-package analyzers.
	Module *Module

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
