package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadDir parses every non-test .go file in dir as one package named
// importPath and typechecks it, resolving its (standard-library) imports
// from compiler export data. goListDir is where `go list` runs — any
// directory inside a Go module, typically the module root. This is the
// loader behind the analysistest golden-file runner, where the package
// under test lives in a testdata directory invisible to `go list`.
func LoadDir(dir, importPath, goListDir string) (*Module, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	exports := map[string]string{}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Dir = goListDir
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, ee.Stderr)
			}
			return nil, fmt.Errorf("go list %s: %v", strings.Join(paths, " "), err)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	pkg, err := check(importPath, fset, files, newModuleImporter(fset, exports))
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", importPath, err)
	}
	return &Module{Fset: fset, Pkgs: []*Package{pkg}}, nil
}
