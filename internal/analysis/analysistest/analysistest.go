// Package analysistest runs an analyzer over golden-file packages under
// testdata/src and checks its findings against `// want` expectations, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a trailing comment on the offending line holding one or
// more quoted regular expressions:
//
//	x := make([]int, 4) // want `make allocates`
//
// Every reported diagnostic must match an expectation on its line, and
// every expectation must be matched by a diagnostic. Findings suppressed by
// a justified //xg:allow comment never reach the matcher, so suppression
// behavior is pinned by golden files with no want comment.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xgrammar/internal/analysis"
)

var wantRE = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`)")

// Run loads testdata/src/<pkg> relative to the test's working directory,
// applies the analyzer, and reports any mismatch between its diagnostics
// and the package's // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	mod, err := analysis.LoadDir(dir, pkg, root)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(mod, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	expect := map[string][]*expectation{} // "file:line" -> expectations
	p := mod.Pkgs[0]
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					pattern := q
					if q[0] == '"' {
						if pattern, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
						}
					} else {
						pattern = q[1 : len(q)-1]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					expect[key] = append(expect[key], &expectation{re: re, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, e := range expect[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, es := range expect {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.raw)
			}
		}
	}
}
