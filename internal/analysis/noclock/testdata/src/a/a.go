// Package a is golden data for the noclock analyzer: wall-clock reads are
// forbidden in //xg:hotpath functions and in any same-package helper
// reachable from one, however deep. Cross-package calls are not followed —
// that is the approved tracer escape hatch — and a justified //xg:allow
// suppresses a deliberate transition stamp.
package a

import "time"

var last time.Time

//xg:hotpath
func Hot() {
	last = time.Now() // want `wall-clock read time\.Now on the hot path rooted at Hot`
	helper()
}

// helper is pulled onto the hot path by Hot's call.
func helper() {
	_ = time.Since(last) // want `wall-clock read time\.Since on the hot path rooted at Hot \(via helper\)`
	deep()
}

// deep is two hops from the root; the chain is reported.
func deep() {
	_ = time.Until(last) // want `wall-clock read time\.Until on the hot path rooted at Hot \(via helper -> deep\)`
}

// Cold is reachable from no hot-path root: clock reads are fine here.
func Cold() time.Time {
	return time.Now()
}

// HotTransition pins suppression: a rare mode-transition stamp with a
// justified //xg:allow reports nothing.
//
//xg:hotpath
func HotTransition() {
	//xg:allow noclock: stamps once per mode transition, not per token
	last = time.Now()
}
