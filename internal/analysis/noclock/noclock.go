// Package noclock forbids wall-clock reads inside //xg:hotpath functions
// and their same-package callees. The decode loop's latency accounting is
// built so that per-token clock reads happen only at approved tracer entry
// points (internal/obs, which stops reading the clock once a trace's detail
// window fills); a stray time.Now inside the per-token path costs tens of
// nanoseconds per token on every request, traced or not.
//
// The walk is transitive over statically-resolvable calls within the
// package: an annotated function may not call time.Now/Since/Until — nor
// call a package-local helper that does, however deep. Cross-package calls
// are not followed; routing clock reads through another package (in
// practice, the obs tracer) is exactly the approved escape hatch. A
// deliberate same-package exception (e.g. stamping a rare mode transition)
// is suppressed with //xg:allow noclock: <reason>.
package noclock

import (
	"go/ast"
	"go/token"
	"go/types"

	"xgrammar/internal/analysis"
)

// Analyzer is the noclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc:  "forbid time.Now/Since/Until in //xg:hotpath functions and their in-package callees",
	Run:  run,
}

// clockFuncs are the forbidden time package entry points.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	// Map every package-local function/method object to its declaration so
	// the walk can descend into callees.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}

	reported := map[token.Pos]bool{}
	for _, root := range analysis.HotPathFuncs(pass.Pkg) {
		visited := map[*types.Func]bool{}
		walk(pass, root, root.Name.Name, "", decls, visited, reported)
	}
	return nil
}

// walk scans fn's body for clock calls and recurses into same-package
// callees. via is the call chain from the hot-path root ("" at the root).
func walk(pass *analysis.Pass, fn *ast.FuncDecl, root, via string,
	decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool, reported map[token.Pos]bool) {
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Pkg.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "time" && clockFuncs[callee.Name()] {
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				suffix := ""
				if via != "" {
					suffix = " (via " + via + ")"
				}
				pass.Reportf(call.Pos(),
					"wall-clock read time.%s on the hot path rooted at %s%s; route timing through the tracer",
					callee.Name(), root, suffix)
			}
			return true
		}
		if callee.Pkg() != pass.Pkg.Types {
			return true // cross-package: the approved tracer escape hatch
		}
		decl, ok := decls[callee]
		if !ok || visited[callee] {
			return true
		}
		visited[callee] = true
		next := callee.Name()
		if via != "" {
			next = via + " -> " + callee.Name()
		}
		walk(pass, decl, root, next, decls, visited, reported)
		return true
	})
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
