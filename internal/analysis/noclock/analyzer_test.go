package noclock_test

import (
	"testing"

	"xgrammar/internal/analysis/analysistest"
	"xgrammar/internal/analysis/noclock"
)

func TestNoClock(t *testing.T) {
	analysistest.Run(t, noclock.Analyzer, "a")
}
