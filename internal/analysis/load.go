package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// LoadModule loads the packages matched by patterns (default "./...") from
// the module rooted at or above dir, typechecking every non-standard package
// from source in dependency order so type objects are shared across
// packages, and importing standard-library dependencies from compiler export
// data produced by `go list -export`. Only non-test Go files are analyzed.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}

	exports := map[string]string{}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := newModuleImporter(fset, exports)
	mod := &Module{Fset: fset}
	for _, p := range listed {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
		}
		imp.checked[p.ImportPath] = pkg.Types
		if !p.DepOnly {
			mod.Pkgs = append(mod.Pkgs, pkg)
		}
	}
	return mod, nil
}

// check typechecks one package from parsed files.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-internal imports to packages already
// typechecked from source (preserving type-object identity across the
// module) and everything else through gc export data.
type moduleImporter struct {
	checked map[string]*types.Package
	gc      types.ImporterFrom
}

func newModuleImporter(fset *token.FileSet, exports map[string]string) *moduleImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &moduleImporter{
		checked: map[string]*types.Package{},
		gc:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.gc.ImportFrom(path, "", 0)
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}
