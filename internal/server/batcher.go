package server

import (
	"context"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xgrammar"
	"xgrammar/internal/maskcache"
)

// Finish reasons reported per generation.
const (
	// FinishStop: the grammar completed and the stop token was sampled.
	FinishStop = "stop"
	// FinishLength: the token budget ran out before the grammar completed.
	FinishLength = "length"
	// FinishCanceled: the client went away mid-generation.
	FinishCanceled = "canceled"
	// FinishShutdown: the server shut down mid-generation.
	FinishShutdown = "shutdown"
)

// genSeq is one generation riding the continuous batch: a pooled grammar
// session, a seeded sampler standing in for the LLM, and the channel the
// HTTP handler streams chunks from.
type genSeq struct {
	ctx  context.Context
	sess *xgrammar.Session
	rng  *rand.Rand
	// remaining is the decode-step budget (jump-forward bytes are free,
	// exactly the Appendix B argument).
	remaining int
	// chunks carries emitted text to the handler. Capacity covers the worst
	// case (one sampled chunk plus one jump-forward chunk per step), so the
	// batcher never blocks on a slow client.
	chunks chan string
	done   chan struct{}
	// Written by the batcher before close(done); read by the handler after.
	finishReason string
	tokens       int
	jfBytes      int

	allowed []int32 // sampling scratch
}

// batcher drives the continuous-batching decode loop: requests join the
// live batch between rounds, every round fills the whole batch's masks
// through the engine's worker pool while the simulated GPU step runs
// (Overlap, §3.5), samples one token per sequence from its mask, inserts
// jump-forward continuations, and retires finished sequences.
type batcher struct {
	eng      *xgrammar.Engine
	eos      int32
	gpuStep  time.Duration
	join     chan *genSeq
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup

	// Metrics.
	tokens    atomic.Int64
	jfBytes   atomic.Int64
	rounds    atomic.Int64
	peakBatch atomic.Int64
	liveNow   atomic.Int64

	latMu    sync.Mutex
	fillLats []time.Duration // bounded ring of per-round batch fill walls
	latNext  int
}

// maxFillSamples bounds the fill-latency ring.
const maxFillSamples = 4096

func newBatcher(eng *xgrammar.Engine, eos int32, gpuStep time.Duration) *batcher {
	b := &batcher{
		eng:     eng,
		eos:     eos,
		gpuStep: gpuStep,
		join:    make(chan *genSeq),
		quit:    make(chan struct{}),
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// close stops the decode loop (idempotent); in-flight sequences finish with
// FinishShutdown.
func (b *batcher) close() {
	b.quitOnce.Do(func() { close(b.quit) })
	b.wg.Wait()
}

// submit hands a sequence to the decode loop; false when the batcher is
// shutting down.
func (b *batcher) submit(q *genSeq) bool {
	select {
	case b.join <- q:
		return true
	case <-b.quit:
		return false
	}
}

func (b *batcher) loop() {
	defer b.wg.Done()
	var live []*genSeq
	var sessions []*xgrammar.Session    // reused across rounds
	var fillStats []maskcache.FillStats // reused stats buffer
	var gpuTimer *time.Timer            // reused pacing timer
	if b.gpuStep > 0 {
		// Created stopped-and-drained: each round Resets it and receives
		// exactly once, so no stale fire can short-circuit the pacing.
		gpuTimer = time.NewTimer(time.Hour)
		if !gpuTimer.Stop() {
			<-gpuTimer.C
		}
		defer gpuTimer.Stop()
	}
	finish := func(i int, reason string) {
		q := live[i]
		q.finishReason = reason
		q.sess.Close()
		close(q.chunks)
		close(q.done)
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		b.liveNow.Store(int64(len(live)))
	}
	for {
		// Admission: block for the first sequence, then drain whatever else
		// has arrived so a burst joins as one batch.
		if len(live) == 0 {
			select {
			case q := <-b.join:
				live = append(live, q)
			case <-b.quit:
				return
			}
		}
	drain:
		for {
			select {
			case q := <-b.join:
				live = append(live, q)
			case <-b.quit:
				for i := len(live) - 1; i >= 0; i-- {
					finish(i, FinishShutdown)
				}
				return
			default:
				break drain
			}
		}
		b.liveNow.Store(int64(len(live)))
		if n := int64(len(live)); n > b.peakBatch.Load() {
			b.peakBatch.Store(n)
		}

		// One decode round: the batch mask fill runs while the simulated GPU
		// step does (§3.5 overlap); both must finish before sampling. The
		// sessions slice and pacing timer are reused so the steady-state
		// round allocates nothing of its own.
		sessions = sessions[:0]
		for _, q := range live {
			sessions = append(sessions, q.sess)
		}
		if gpuTimer != nil {
			gpuTimer.Reset(b.gpuStep)
		}
		t0 := time.Now()
		fillStats = b.eng.FillBatchInto(fillStats, sessions)
		b.recordFill(time.Since(t0))
		if gpuTimer != nil {
			<-gpuTimer.C
		}
		b.rounds.Add(1)

		// Sampling + acceptance, newest last so swap-removal is safe.
		for i := 0; i < len(live); {
			q := live[i]
			if q.ctx.Err() != nil {
				finish(i, FinishCanceled)
				continue
			}
			id, ok := q.pick(b.eos)
			if !ok {
				// Budget exhausted before the grammar could complete (or a
				// stuck mask, which a sound grammar never produces).
				finish(i, FinishLength)
				continue
			}
			if err := q.sess.Accept(id); err != nil {
				// Unreachable for tokens drawn from the mask; fail closed.
				finish(i, FinishLength)
				continue
			}
			if q.sess.IsTerminated() {
				finish(i, FinishStop)
				continue
			}
			text := q.sess.Grammar().TokenizerInfo().TokenBytes(id)
			q.tokens++
			q.remaining--
			b.tokens.Add(1)
			q.emit(string(text))
			// Jump-forward (Appendix B): the deterministic continuation costs
			// no decode round and no token budget.
			if jf := q.sess.JumpForward(); jf != "" {
				if err := q.sess.AcceptString(jf); err == nil {
					q.jfBytes += len(jf)
					b.jfBytes.Add(int64(len(jf)))
					q.emit(jf)
				}
			}
			i++
		}
	}
}

// emit sends a chunk without ever blocking the decode loop (the channel is
// sized for the worst case; drop defensively if a bug undersizes it).
func (q *genSeq) emit(text string) {
	select {
	case q.chunks <- text:
	default:
	}
}

// pick samples the next token from the session's current mask: uniform over
// the allowed set, with a bias toward the stop token once stopping is legal
// so outputs stay bounded. ok=false means the sequence must stop without a
// legal stop token (budget exhausted or empty mask).
func (q *genSeq) pick(eos int32) (int32, bool) {
	mask := q.sess.Mask()
	q.allowed = q.allowed[:0]
	eosAllowed := false
	for w, word := range mask {
		for ; word != 0; word &= word - 1 {
			id := int32(w<<6) + int32(bits.TrailingZeros64(word))
			if id == eos {
				eosAllowed = true
				continue
			}
			q.allowed = append(q.allowed, id)
		}
	}
	if q.remaining <= 0 || len(q.allowed) == 0 {
		if eosAllowed {
			return eos, true
		}
		return 0, false
	}
	// Termination bias: once the grammar can complete, stop with probability
	// 1/4 — the simulated LLM's mild preference for finishing its answer.
	if eosAllowed && q.rng.Intn(4) == 0 {
		return eos, true
	}
	return q.allowed[q.rng.Intn(len(q.allowed))], true
}

// recordFill appends one round's batch-fill wall time to the bounded ring.
func (b *batcher) recordFill(d time.Duration) {
	b.latMu.Lock()
	if len(b.fillLats) < maxFillSamples {
		b.fillLats = append(b.fillLats, d)
	} else {
		b.fillLats[b.latNext] = d
		b.latNext = (b.latNext + 1) % maxFillSamples
	}
	b.latMu.Unlock()
}

// fillPercentiles returns the p50 and p99 of recorded batch-fill walls.
func (b *batcher) fillPercentiles() (p50, p99 time.Duration) {
	b.latMu.Lock()
	lats := append([]time.Duration(nil), b.fillLats...)
	b.latMu.Unlock()
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[int(0.50*float64(len(lats)-1))], lats[int(0.99*float64(len(lats)-1))]
}
