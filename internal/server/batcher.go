package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"xgrammar"
	"xgrammar/internal/backend"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/obs"
	"xgrammar/internal/quantile"
	"xgrammar/internal/spec"
)

// Finish reasons reported per generation.
const (
	// FinishStop: the grammar completed and the stop token was sampled.
	FinishStop = "stop"
	// FinishLength: the token budget ran out before the grammar completed.
	FinishLength = "length"
	// FinishCanceled: the client went away mid-generation.
	FinishCanceled = "canceled"
	// FinishShutdown: the server shut down mid-generation.
	FinishShutdown = "shutdown"
	// FinishError: the model backend failed mid-generation (the partial
	// output was streamed; the per-backend error counter records it).
	FinishError = "error"
)

// genSeq is one generation riding the continuous batch: a pooled grammar
// session, a model-backend sequence picking each token under the grammar
// mask (the seeded simulated sampler by default), and the channel the HTTP
// handler streams chunks from.
type genSeq struct {
	ctx  context.Context
	sess *xgrammar.Session
	// seq picks tokens; trig and spec are its optional trigger-injection and
	// draft hooks (nil when the backend lacks them).
	seq  backend.Sequence
	trig backend.TriggerProposer
	spec backend.Speculator
	// modelErr records a backend failure (not grammar exhaustion): the
	// generation finishes with FinishError and the backend's error counter.
	modelErr error
	// remaining is the decode-step budget (jump-forward bytes are free,
	// exactly the Appendix B argument).
	remaining int
	// chunks carries emitted text to the handler. Capacity covers the worst
	// case (one sampled chunk plus one jump-forward chunk per step), so the
	// batcher never blocks on a slow client.
	chunks chan string
	done   chan struct{}
	// Written by the batcher before close(done); read by the handler after.
	finishReason string
	tokens       int
	jfBytes      int

	// trace is the request's lifecycle trace (nil when tracing is off); the
	// handler observes admission/resolve/stream stages into it while the
	// batcher observes queue/accept/fill/backend — the trace's own mutex
	// serialises them. submitAt stamps batcher submission; queued flips when
	// the first decode round includes the sequence (queue-wait span).
	trace    *obs.Trace
	submitAt time.Time
	queued   bool

	// draftK > 0 enables speculative draft-verify decoding with that
	// window; the batcher zeroes it when the session's rollback history
	// cannot retract a window (permanent per-sequence fallback) or the
	// backend stops drafting. The fill, propose, and verdict closures are
	// built once at submit so the steady-state round allocates nothing per
	// step; roundPropose is refreshed from the backend's Draft hook each
	// round.
	draftK       int
	specW        spec.Window
	fill         func()
	propose      spec.Proposer
	roundPropose backend.Proposer
	verdict      spec.Sampler

	// Structural-tag state. Free-text rounds always decode plainly (the
	// trigger-injection RNG draw must align between plain and speculative
	// runs); speculation applies inside tag segments, where the grammar
	// makes greedy drafts worth verifying. specPhase records, per draft
	// window position, whether the session had left the segment (the
	// verdict sampler declines those positions so the RNG stream stays
	// aligned with a plain decode); specFreeDecline marks a round whose
	// missing bonus is a phase exit, not an exhausted budget.
	isTag           bool
	begins          []string
	lastInTag       bool
	segments        int
	specPhase       []bool
	specFreeDecline bool
}

// inTag reports whether the session is inside a constrained tag segment.
func (q *genSeq) inTag() bool {
	_, ok := q.sess.InTag()
	return ok
}

// batcher drives the continuous-batching decode loop: requests join the
// live batch between rounds, every round fills the whole batch's masks
// through the engine's worker pool while the simulated GPU step runs
// (Overlap, §3.5), samples one token per sequence from its mask, inserts
// jump-forward continuations, and retires finished sequences.
type batcher struct {
	eng      *xgrammar.Engine
	tok      *xgrammar.TokenizerInfo
	eos      int32
	gpuStep  time.Duration
	tracer   *obs.Tracer
	join     chan *genSeq
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup

	// Metrics.
	tokens    atomic.Int64
	jfBytes   atomic.Int64
	rounds    atomic.Int64
	peakBatch atomic.Int64
	liveNow   atomic.Int64

	// Structural-tag gauges: per-phase token counts, segment transitions,
	// and forced trigger bytes.
	tagRequests  atomic.Int64
	segsOpened   atomic.Int64
	segsClosed   atomic.Int64
	freeTokens   atomic.Int64
	tagTokens    atomic.Int64
	triggerBytes atomic.Int64

	// Speculative-decoding gauges: draft tokens proposed by the draft
	// model, speculatively accepted by the grammar, confirmed by the
	// sampler (each confirmed token is a decode round saved), and
	// sequences that fell back because the rollback window was too small.
	specRequests  atomic.Int64
	specProposed  atomic.Int64
	specDrafted   atomic.Int64
	specAccepted  atomic.Int64
	specFallbacks atomic.Int64

	// fillRing is the bounded window of per-round batch-fill walls behind
	// the JSON fill_p50_us/fill_p99_us gauges.
	fillRing *quantile.Ring
}

// maxFillSamples bounds the fill-latency ring.
const maxFillSamples = 4096

func newBatcher(eng *xgrammar.Engine, eos int32, gpuStep time.Duration, tracer *obs.Tracer) *batcher {
	b := &batcher{
		eng:      eng,
		tok:      eng.Compiler().TokenizerInfo(),
		eos:      eos,
		gpuStep:  gpuStep,
		tracer:   tracer,
		join:     make(chan *genSeq),
		quit:     make(chan struct{}),
		fillRing: quantile.NewRing(maxFillSamples),
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// close stops the decode loop (idempotent); in-flight sequences finish with
// FinishShutdown.
func (b *batcher) close() {
	b.quitOnce.Do(func() { close(b.quit) })
	b.wg.Wait()
}

// submit hands a sequence to the decode loop; false when the batcher is
// shutting down.
func (b *batcher) submit(q *genSeq) bool {
	q.trig, _ = q.seq.(backend.TriggerProposer)
	if q.draftK > 0 {
		if q.spec, _ = q.seq.(backend.Speculator); q.spec == nil {
			// The backend cannot draft: permanent plain decoding.
			q.draftK = 0
		}
	}
	if q.draftK > 0 {
		q.fill = func() { q.sess.Fill() }
		if q.isTag {
			q.propose = b.tagProposer(q)
			q.verdict = b.tagVerdictSampler(q)
		} else {
			q.propose = func(pos int, mask []uint64) (int32, bool) { return q.roundPropose(pos, mask) }
			q.verdict = b.verdictSampler(q)
		}
	}
	select {
	case b.join <- q:
		return true
	case <-b.quit:
		return false
	}
}

func (b *batcher) loop() {
	defer b.wg.Done()
	var live []*genSeq
	var sessions []*xgrammar.Session    // reused across rounds
	var fillStats []maskcache.FillStats // reused stats buffer
	var gpuTimer *time.Timer            // reused pacing timer
	if b.gpuStep > 0 {
		// Created stopped-and-drained: each round Resets it and receives
		// exactly once, so no stale fire can short-circuit the pacing.
		gpuTimer = time.NewTimer(time.Hour)
		if !gpuTimer.Stop() {
			<-gpuTimer.C
		}
		defer gpuTimer.Stop()
	}
	finish := func(i int, reason string) {
		q := live[i]
		q.finishReason = reason
		// Merge completed structural-tag segment spans before Close resets
		// them with the rest of the session state.
		if q.isTag && q.trace != nil {
			for _, sp := range q.sess.TagSegments() {
				q.trace.EventAt(obs.StageTagSegment, sp.Start, sp.Dur)
				b.tracer.ObserveStage(obs.StageTagSegment, sp.Dur)
			}
		}
		q.seq.Close()
		q.sess.Close()
		close(q.chunks)
		close(q.done)
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		b.liveNow.Store(int64(len(live)))
	}
	for {
		// Admission: block for the first sequence, then drain whatever else
		// has arrived so a burst joins as one batch.
		if len(live) == 0 {
			select {
			case q := <-b.join:
				live = append(live, q)
			case <-b.quit:
				return
			}
		}
	drain:
		for {
			select {
			case q := <-b.join:
				live = append(live, q)
			case <-b.quit:
				for i := len(live) - 1; i >= 0; i-- {
					finish(i, FinishShutdown)
				}
				return
			default:
				break drain
			}
		}
		b.liveNow.Store(int64(len(live)))
		if n := int64(len(live)); n > b.peakBatch.Load() {
			b.peakBatch.Store(n)
		}
		b.tracer.ObserveDepth(len(live))
		for _, q := range live {
			if !q.queued {
				q.queued = true
				q.trace.Observe(obs.StageQueue, time.Since(q.submitAt))
			}
		}

		// One decode round: the batch mask fill runs while the simulated GPU
		// step does (§3.5 overlap); both must finish before sampling. The
		// sessions slice and pacing timer are reused so the steady-state
		// round allocates nothing of its own.
		sessions = sessions[:0]
		for _, q := range live {
			sessions = append(sessions, q.sess)
		}
		if gpuTimer != nil {
			gpuTimer.Reset(b.gpuStep)
		}
		t0 := time.Now()
		fillStats = b.eng.FillBatchInto(fillStats, sessions)
		fillWall := time.Since(t0)
		b.fillRing.Observe(fillWall)
		b.tracer.ObserveStage(obs.StageFill, fillWall)
		// Attribute the round's batched fill to each traced participant as a
		// trace event (the histogram sample above is per round, not per
		// sequence, so the batch size does not inflate it).
		for _, q := range live {
			if q.trace.Detail() {
				q.trace.Event(obs.StageFill, fillWall)
			}
		}
		if gpuTimer != nil {
			<-gpuTimer.C
		}
		b.rounds.Add(1)

		// Sampling + acceptance, newest last so swap-removal is safe.
		for i := 0; i < len(live); {
			q := live[i]
			if q.ctx.Err() != nil {
				finish(i, FinishCanceled)
				continue
			}
			if done, reason := b.stepSeq(q); done {
				finish(i, reason)
				continue
			}
			i++
		}
	}
}

// stepSeq advances one sequence by a decode round: a speculative
// draft-verify window when enabled, a single sampled token otherwise.
// Structural-tag sequences speculate only inside tag segments — free-text
// rounds always decode plainly so the trigger-injection RNG draws align
// between plain and speculative runs of the same seed.
// done=true means the generation ended with the given finish reason.
func (b *batcher) stepSeq(q *genSeq) (done bool, reason string) {
	if q.draftK > 0 && (!q.isTag || q.inTag()) {
		if done, reason, ok := b.specRound(q); ok {
			return done, reason
		}
		// The rollback window could not cover the draft; q.draftK is now
		// zero and the round decodes plainly (the failed speculative step
		// touched no session state).
	}
	return b.plainRound(q)
}

// plainRound samples and commits one token (plus jump-forward insertion).
// For structural-tag sequences in free text it first lets the model decide
// to open a tool call (the backend's trigger hook — the simulated sampler
// elects one with probability 1/6): the begin tag is forced into the stream,
// arming the tag's sub-grammar, mirroring an instruction-tuned model
// electing to call a tool.
func (b *batcher) plainRound(q *genSeq) (done bool, reason string) {
	if q.isTag && !q.inTag() && q.remaining > 0 && q.trig != nil {
		if idx, fire := q.trig.ProposeTrigger(len(q.begins)); fire {
			if err := q.sess.AcceptString(q.begins[idx]); err == nil {
				// The trigger is the model's own output: let the backend
				// observe it (the sampler absorbs it for free).
				q.seq.ObserveForced(q.begins[idx])
				b.emitTrigger(q, q.begins[idx])
				b.trackPhase(q)
				b.insertJumpForward(q)
				q.sess.Fill()
			}
		}
	}
	wasTag := q.inTag()
	id, ok := b.pick(q, q.sess.Mask())
	if !ok {
		if q.modelErr != nil {
			return true, FinishError
		}
		// Budget exhausted before the grammar could complete (or a stuck
		// mask, which a sound grammar never produces).
		return true, FinishLength
	}
	// Per-step span timing only while the trace's detail window has room:
	// clock reads chain (accept span end = jump-forward span start), so a
	// traced step costs two extra time.Now calls and an untraced one none.
	var tAcc time.Time
	if q.trace.Detail() {
		tAcc = time.Now()
	}
	if err := q.sess.Accept(id); err != nil {
		// Unreachable for tokens drawn from the mask — but a model backend
		// may return a token outside it; fail the generation closed.
		return true, FinishError
	}
	if !tAcc.IsZero() {
		tAcc = q.trace.ObserveSince(obs.StageAccept, tAcc)
	}
	if q.sess.IsTerminated() {
		return true, FinishStop
	}
	q.remaining--
	b.emitTokenPhase(q, id, wasTag)
	b.insertJumpForward(q)
	if !tAcc.IsZero() {
		q.trace.ObserveSince(obs.StageJumpForward, tAcc)
	}
	b.trackPhase(q)
	return false, ""
}

// specRound runs one speculative draft-verify round (§3.3 rollback window):
// a grammar-greedy draft model proposes up to draftK tokens, the session
// speculatively accepts them (capturing per-position masks), the seeded
// sampler delivers verdicts against those masks, and the rejected suffix —
// draft tokens plus any jump-forward insertions riding on them — is
// retracted atomically. Because verdicts consume the sequence's RNG exactly
// as a plain decode of the same tokens would, output is byte-identical to
// non-speculative decoding with the same seed; only the number of decode
// rounds shrinks. ok=false reports the window exceeded the session's
// rollback history: draftK is zeroed and nothing was committed.
func (b *batcher) specRound(q *genSeq) (done bool, reason string, ok bool) {
	q.specPhase = q.specPhase[:0]
	q.specFreeDecline = false
	// Refresh the draft window from the backend's draft model; a backend
	// that stops drafting falls back to plain decoding permanently.
	var drafting bool
	if q.roundPropose, drafting = q.spec.Draft(q.ctx, q.draftK); !drafting {
		q.draftK = 0
		b.specFallbacks.Add(1)
		return false, "", false
	}
	res, err := spec.Step(q.sess, q.fill, q.propose, q.verdict, &q.specW,
		spec.Options{MaxDraft: q.draftK, EOS: b.eos, JumpForward: true})
	if err != nil {
		if errors.Is(err, spec.ErrWindowExceeded) {
			q.draftK = 0
			b.specFallbacks.Add(1)
			return false, "", false
		}
		// Corrupt-state guard: fail the generation closed.
		return true, FinishLength, true
	}
	if q.modelErr != nil {
		// The backend failed mid-verify; the confirmed prefix (below) was
		// already committed by spec.Step, so stream it before finishing.
		for j := 0; j < res.Accepted; j++ {
			b.emitTokenPhase(q, q.specW.DraftAt(j), q.isTag)
			if jf := q.specW.JumpForwardAt(j); jf != "" {
				b.emitJumpForward(q, jf)
			}
		}
		return true, FinishError, true
	}
	b.specProposed.Add(int64(res.Proposed))
	b.specDrafted.Add(int64(res.Drafted))
	b.specAccepted.Add(int64(res.Accepted))
	inTag := q.isTag // tag sequences only reach specRound inside a segment
	for j := 0; j < res.Accepted; j++ {
		b.emitTokenPhase(q, q.specW.DraftAt(j), inTag)
		if jf := q.specW.JumpForwardAt(j); jf != "" {
			b.emitJumpForward(q, jf)
		}
	}
	if !res.HasBonus {
		if q.specFreeDecline {
			// The window ran into the segment end: the committed prefix
			// closed the segment and the next round decodes free text
			// plainly — this is a phase boundary, not an exhausted budget.
			b.trackPhase(q)
			return false, "", true
		}
		return true, FinishLength, true
	}
	if res.Terminated {
		return true, FinishStop, true
	}
	b.emitTokenPhase(q, res.Bonus, inTag)
	b.insertJumpForward(q)
	b.trackPhase(q)
	return false, "", true
}

// emitToken streams one committed token's text and counts it. The token
// budget is not charged here: the plain path charges it on acceptance, the
// speculative path inside the verdict sampler (so RNG and budget progress
// match the plain decode exactly).
func (b *batcher) emitToken(q *genSeq, id int32) {
	q.tokens++
	b.tokens.Add(1)
	q.emit(string(b.tok.TokenBytes(id)))
}

// emitTokenPhase is emitToken plus per-phase accounting for structural-tag
// sequences: inTag reports the phase the token was sampled in.
func (b *batcher) emitTokenPhase(q *genSeq, id int32, inTag bool) {
	b.emitToken(q, id)
	if q.isTag {
		if inTag {
			b.tagTokens.Add(1)
		} else {
			b.freeTokens.Add(1)
		}
	}
}

// emitTrigger streams a forced begin tag (the simulated model deciding to
// open a tool call); like jump-forward bytes it costs no decode round and
// no token budget.
func (b *batcher) emitTrigger(q *genSeq, begin string) {
	b.triggerBytes.Add(int64(len(begin)))
	q.emit(begin)
}

// trackPhase updates segment open/close gauges when a structural-tag
// sequence crossed a mode boundary since the last check.
func (b *batcher) trackPhase(q *genSeq) {
	if !q.isTag {
		return
	}
	cur := q.inTag()
	if cur == q.lastInTag {
		return
	}
	if cur {
		b.segsOpened.Add(1)
	} else {
		b.segsClosed.Add(1)
		q.segments++
	}
	q.lastInTag = cur
}

// tagProposer drafts greedily while the session stays inside its tag
// segment, recording each window position's phase; the first free-text
// position stops the draft (free text is never worth speculating — and
// must decode plainly so the trigger-injection RNG stays aligned).
func (b *batcher) tagProposer(q *genSeq) spec.Proposer {
	return func(pos int, mask []uint64) (int32, bool) {
		free := !q.inTag()
		q.specPhase = append(q.specPhase, free)
		if free {
			q.specFreeDecline = true
			return 0, false
		}
		return q.roundPropose(pos, mask)
	}
}

// tagVerdictSampler is the verdict sampler for structural-tag sequences:
// positions the draft reached after leaving the segment are declined (the
// plain decode would handle them in later free-text rounds, with the
// injection draw first), everything else samples exactly like a plain
// decode round.
func (b *batcher) tagVerdictSampler(q *genSeq) spec.Sampler {
	return func(pos int, mask []uint64) (int32, bool) {
		if pos < len(q.specPhase) && q.specPhase[pos] {
			q.specFreeDecline = true
			return 0, false
		}
		if pos >= len(q.specPhase) && !q.inTag() {
			// Bonus position past a full window whose last draft closed the
			// segment: the live session sits in free text.
			q.specFreeDecline = true
			return 0, false
		}
		id, ok := b.pick(q, mask)
		if ok && id != b.eos {
			q.remaining--
		}
		return id, ok
	}
}

// emitJumpForward streams an already-inserted forced continuation.
func (b *batcher) emitJumpForward(q *genSeq, jf string) {
	q.jfBytes += len(jf)
	b.jfBytes.Add(int64(len(jf)))
	q.emit(jf)
}

// insertJumpForward probes and inserts the deterministic continuation at
// the sequence head (Appendix B): no decode round, no token budget.
func (b *batcher) insertJumpForward(q *genSeq) {
	if jf := q.sess.JumpForward(); jf != "" {
		if err := q.sess.AcceptString(jf); err == nil {
			b.emitJumpForward(q, jf)
		}
	}
}

// verdictSampler adapts the sequence's model backend as the speculative
// verify step's target model, charging the token budget per confirmed
// non-stop verdict (every ok verdict is committed: confirmed draft tokens
// and the bonus alike).
func (b *batcher) verdictSampler(q *genSeq) spec.Sampler {
	return func(_ int, mask []uint64) (int32, bool) {
		id, ok := b.pick(q, mask)
		if ok && id != b.eos {
			q.remaining--
		}
		return id, ok
	}
}

// emit sends a chunk without ever blocking the decode loop (the channel is
// sized for the worst case; drop defensively if a bug undersizes it).
func (q *genSeq) emit(text string) {
	select {
	case q.chunks <- text:
	default:
	}
}

// pick asks the sequence's model backend for the next token under the given
// grammar mask. The token-budget gate runs first and consumes no backend
// state (exactly as the old in-batcher sampler gated before drawing RNG), so
// a budget-exhausted sequence stops on the stop token if it is legal and
// fails closed otherwise. Backend errors other than a clean decline are
// recorded in q.modelErr so the generation finishes with FinishError. Both
// the plain decode and the speculative verify pass pick through here, so a
// given token stream drives the backend identically in either mode.
func (b *batcher) pick(q *genSeq, mask []uint64) (int32, bool) {
	if q.remaining <= 0 {
		if maskHas(mask, b.eos) {
			return b.eos, true
		}
		return 0, false
	}
	var t0 time.Time
	if q.trace.Detail() {
		t0 = time.Now()
	}
	id, err := q.seq.Next(q.ctx, mask)
	if !t0.IsZero() {
		q.trace.ObserveSince(obs.StageBackend, t0)
	}
	if err != nil {
		if !errors.Is(err, backend.ErrNoToken) {
			q.modelErr = err
		}
		return 0, false
	}
	return id, true
}

// maskHas reports whether a token id is set in the bitmask.
func maskHas(mask []uint64, id int32) bool {
	w := int(id >> 6)
	return id >= 0 && w < len(mask) && mask[w]&(1<<uint(id&63)) != 0
}

// specMetrics snapshots the speculative-decoding gauges.
func (b *batcher) specMetrics() SpeculativeMetrics {
	m := SpeculativeMetrics{
		Requests:        b.specRequests.Load(),
		ProposedTokens:  b.specProposed.Load(),
		DraftedTokens:   b.specDrafted.Load(),
		AcceptedTokens:  b.specAccepted.Load(),
		WindowFallbacks: b.specFallbacks.Load(),
	}
	m.RoundsSaved = m.AcceptedTokens
	if m.ProposedTokens > 0 {
		m.AcceptanceRate = float64(m.AcceptedTokens) / float64(m.ProposedTokens)
	}
	return m
}

// tagMetrics snapshots the structural-tag gauges.
func (b *batcher) tagMetrics() StructuralTagMetrics {
	return StructuralTagMetrics{
		Requests:       b.tagRequests.Load(),
		SegmentsOpened: b.segsOpened.Load(),
		SegmentsClosed: b.segsClosed.Load(),
		FreeTokens:     b.freeTokens.Load(),
		TagTokens:      b.tagTokens.Load(),
		TriggerBytes:   b.triggerBytes.Load(),
	}
}

// fillPercentiles returns the p50 and p99 of recorded batch-fill walls
// (ceil-based nearest rank, shared with the engine's fill metrics).
func (b *batcher) fillPercentiles() (p50, p99 time.Duration) {
	q := b.fillRing.Quantiles(0.50, 0.99)
	return q[0], q[1]
}
