package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"xgrammar"
	"xgrammar/internal/server"
)

const testSchema = `{"type": "object", "properties": {
	"name": {"type": "string"}, "id": {"type": "integer"}},
	"required": ["name", "id"]}`

func testInfo(t testing.TB) *xgrammar.TokenizerInfo {
	t.Helper()
	return xgrammar.DefaultTokenizer(800)
}

// gateway boots a gateway over a fresh compiler; storeDir == "" disables
// persistence; warm runs WarmStart before serving.
func gateway(t *testing.T, storeDir string, warm bool, cfg server.Config, engOpts ...xgrammar.EngineOption) (*httptest.Server, *server.Server, *xgrammar.Compiler) {
	t.Helper()
	comp := xgrammar.NewCompiler(testInfo(t))
	if storeDir != "" {
		if err := comp.AttachStore(storeDir); err != nil {
			t.Fatal(err)
		}
	}
	if warm {
		if _, err := comp.WarmStart(); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Engine = xgrammar.NewEngine(comp, engOpts...)
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv, comp
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getMetrics(t *testing.T, base string) server.Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// assertValidInstance checks text is a complete instance of the schema.
func assertValidInstance(t *testing.T, text string) {
	t.Helper()
	cg, err := xgrammar.NewCompiler(testInfo(t)).CompileJSONSchema([]byte(testSchema), xgrammar.SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := xgrammar.NewMatcher(cg)
	if err := m.AcceptString(text); err != nil {
		t.Fatalf("generated text violates schema: %v\ntext: %s", err, text)
	}
	if !m.CanTerminate() {
		t.Fatalf("generated text is not a complete instance: %s", text)
	}
}

// TestWarmRestartEndToEnd is the acceptance path: register a JSON-schema
// grammar, generate against it, restart the gateway over the same store
// directory, and assert the second boot answers by grammar ID from the warm
// store — zero compiles — verified through /metrics.
func TestWarmRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// ---- First boot: compile, serve, persist. ----
	ts1, srv1, _ := gateway(t, dir, false, server.Config{MaxInflight: 8, MaxTokens: 300})
	resp, body := postJSON(t, ts1.URL+"/v1/grammars", server.GrammarRequest{Kind: "json_schema", Source: testSchema})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg server.GrammarResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.ID) != 64 {
		t.Fatalf("grammar id %q is not content-addressed", reg.ID)
	}
	resp, body = postJSON(t, ts1.URL+"/v1/generate", server.GenerateRequest{GrammarID: reg.ID, Seed: 42})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	var gen server.GenerateResponse
	if err := json.Unmarshal(body, &gen); err != nil {
		t.Fatal(err)
	}
	if gen.FinishReason != "stop" {
		t.Fatalf("finish reason %q, response %s", gen.FinishReason, body)
	}
	assertValidInstance(t, gen.Text)
	m1 := getMetrics(t, ts1.URL)
	if m1.Store.Writes != 1 || m1.CompileCache.Compiles != 1 {
		t.Fatalf("first boot metrics: %+v", m1)
	}
	if m1.TokensGenerated == 0 || m1.DecodeRounds == 0 {
		t.Fatalf("engine metrics flat: %+v", m1)
	}
	ts1.Close()
	srv1.Close()

	// ---- Second boot, same store dir: warm start, no recompile. ----
	ts2, _, _ := gateway(t, dir, true, server.Config{MaxInflight: 8, MaxTokens: 300})
	m2 := getMetrics(t, ts2.URL)
	if m2.Store.Preloaded != 1 {
		t.Fatalf("warm start did not preload: %+v", m2.Store)
	}
	// First request of the new process, straight by grammar ID.
	resp, body = postJSON(t, ts2.URL+"/v1/generate", server.GenerateRequest{GrammarID: reg.ID, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm generate: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &gen); err != nil {
		t.Fatal(err)
	}
	assertValidInstance(t, gen.Text)
	m2 = getMetrics(t, ts2.URL)
	if m2.CompileCache.Compiles != 0 {
		t.Fatalf("second boot recompiled: %+v", m2.CompileCache)
	}
	if m2.Store.Preloaded != 1 || m2.Store.Writes != 0 {
		t.Fatalf("second boot store activity: %+v", m2.Store)
	}
}

// TestMetricsCountersMove asserts the gramcache and store counters advance
// under repeated inline-grammar requests.
func TestMetricsCountersMove(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := gateway(t, dir, false, server.Config{MaxInflight: 8, MaxTokens: 300})
	req := server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           1,
	}
	var prevHits int64 = -1
	for i := 0; i < 4; i++ {
		req.Seed = int64(i + 1)
		resp, body := postJSON(t, ts.URL+"/v1/generate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
		m := getMetrics(t, ts.URL)
		if m.CompileCache.Hits <= prevHits && i > 0 {
			t.Fatalf("request %d: compile-cache hits did not advance: %+v", i, m.CompileCache)
		}
		prevHits = m.CompileCache.Hits
		if m.Requests != int64(i+1) {
			t.Fatalf("requests_total = %d after %d requests", m.Requests, i+1)
		}
	}
	m := getMetrics(t, ts.URL)
	// One compile, one store write, the rest in-memory hits.
	if m.CompileCache.Compiles != 1 || m.Store.Writes != 1 || m.Store.Misses != 1 {
		t.Fatalf("final metrics: compile=%+v store=%+v", m.CompileCache, m.Store)
	}
	if m.CompileCache.Hits < 3 {
		t.Fatalf("cache hits = %d, want >= 3", m.CompileCache.Hits)
	}
	if !m.Store.Attached {
		t.Fatal("store not reported attached")
	}
}

func TestStreamingSSE(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 300})
	data, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           99,
		Stream:         true,
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var text strings.Builder
	var final server.GenerateResponse
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		if payload == "[DONE]" {
			sawDone = true
			break
		}
		var probe struct {
			Text string `json:"text"`
			Done bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(payload), &probe); err != nil {
			t.Fatalf("bad event %q: %v", payload, err)
		}
		if probe.Done {
			json.Unmarshal([]byte(payload), &final)
		} else {
			text.WriteString(probe.Text)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone || !final.Done {
		t.Fatalf("stream ended without summary+[DONE] (done=%v)", final.Done)
	}
	if final.FinishReason != "stop" {
		t.Fatalf("finish reason %q", final.FinishReason)
	}
	assertValidInstance(t, text.String())
	if final.Tokens == 0 {
		t.Fatal("no tokens reported")
	}
}

func TestGenerateRegexAndPrefixAndDeterminism(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 100})
	gen := func(req server.GenerateRequest) server.GenerateResponse {
		resp, body := postJSON(t, ts.URL+"/v1/generate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate: %d %s", resp.StatusCode, body)
		}
		var g server.GenerateResponse
		if err := json.Unmarshal(body, &g); err != nil {
			t.Fatal(err)
		}
		return g
	}
	req := server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^[ab]{3,8}c$`},
		Seed:           5,
	}
	g1 := gen(req)
	if !regexp.MustCompile(`^[ab]{3,8}c$`).MatchString(g1.Text) {
		t.Fatalf("output %q violates the pattern", g1.Text)
	}
	if g2 := gen(req); g2.Text != g1.Text {
		t.Fatalf("same seed produced %q then %q", g1.Text, g2.Text)
	}
	// Prefix priming: the output continues the supplied prefix.
	g3 := gen(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^[ab]{3,8}c$`},
		Prefix:         "abab",
		Seed:           5,
	})
	if !strings.HasPrefix(g3.Text, "abab") || !regexp.MustCompile(`^[ab]{3,8}c$`).MatchString(g3.Text) {
		t.Fatalf("prefixed output %q", g3.Text)
	}
	// The streaming variant must reconstruct the same document: the prefix
	// arrives as the first SSE chunk.
	data, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^[ab]{3,8}c$`},
		Prefix:         "abab",
		Seed:           5,
		Stream:         true,
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var streamed strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		payload, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok || payload == "[DONE]" {
			continue
		}
		var ev struct {
			Text string `json:"text"`
			Done bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(payload), &ev); err == nil && !ev.Done {
			streamed.WriteString(ev.Text)
		}
	}
	if streamed.String() != g3.Text {
		t.Fatalf("streamed %q but non-streaming returned %q", streamed.String(), g3.Text)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 50})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"bad kind", "/v1/grammars", server.GrammarRequest{Kind: "prolog", Source: "x"}, http.StatusBadRequest},
		{"bad grammar", "/v1/grammars", server.GrammarRequest{Kind: "ebnf", Source: "root == oops"}, http.StatusUnprocessableEntity},
		{"bad schema", "/v1/grammars", server.GrammarRequest{Kind: "json_schema", Source: "{"}, http.StatusUnprocessableEntity},
		{"unknown grammar id", "/v1/generate", server.GenerateRequest{GrammarID: strings.Repeat("ab", 32)}, http.StatusNotFound},
		{"bad prefix", "/v1/generate", server.GenerateRequest{
			GrammarRequest: server.GrammarRequest{Kind: "builtin", Source: "json"}, Prefix: "not json!"},
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no error payload: %s", tc.name, body)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	// Unknown grammar metadata.
	resp, err = http.Get(ts.URL + "/v1/grammars/" + strings.Repeat("cd", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown grammar: status %d", resp.StatusCode)
	}
}

func TestGrammarRegistryRoundTrip(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 50})
	resp, body := postJSON(t, ts.URL+"/v1/grammars", server.GrammarRequest{Kind: "builtin", Source: "json"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg server.GrammarResponse
	json.Unmarshal(body, &reg)
	resp2, err := http.Get(ts.URL + "/v1/grammars/" + reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("get grammar: %d", resp2.StatusCode)
	}
	var got server.GrammarResponse
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != reg.ID || got.PDANodes == 0 {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, reg)
	}
}

// TestAdmissionBound floods the gateway beyond MaxInflight and asserts the
// overflow is rejected with 429 while admitted requests complete.
func TestAdmissionBound(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 2,
		MaxTokens:   60,
		GPUStep:     5 * time.Millisecond, // each decode round takes >= 5ms
	})
	// A grammar with no early termination: at least 40 ambiguous decode
	// steps, so each admitted generation holds its slot for >= 200ms.
	req, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^(a|b){40,50}$`},
	})
	const clients = 6
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(req))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok, rejected := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d (all: %v)", c, codes)
		}
	}
	if ok == 0 || rejected == 0 {
		t.Fatalf("admission bound not exercised: codes %v", codes)
	}
	m := getMetrics(t, ts.URL)
	if m.Rejected != int64(rejected) {
		t.Fatalf("metrics rejected = %d, observed %d", m.Rejected, rejected)
	}
}

// TestContinuousBatchingOverlap drives concurrent generations and asserts
// they actually shared decode rounds (peak batch > 1).
func TestContinuousBatchingOverlap(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 16,
		MaxTokens:   80,
		GPUStep:     2 * time.Millisecond,
	})
	req, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^(a|b){30,40}$`},
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(req))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	m := getMetrics(t, ts.URL)
	if m.PeakBatch < 2 {
		t.Fatalf("no batching observed: %+v", m)
	}
	if m.FillP50US == 0 && m.FillP99US == 0 {
		t.Fatalf("no fill latencies recorded: %+v", m)
	}
	if m.TokensPerSec <= 0 {
		t.Fatalf("throughput not reported: %+v", m)
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %v %+v", err, h)
	}
}

func TestShutdownFinishesInflight(t *testing.T) {
	comp := xgrammar.NewCompiler(testInfo(t))
	eng := xgrammar.NewEngine(comp)
	srv := server.New(server.Config{Engine: eng, MaxInflight: 4, MaxTokens: 500, GPUStep: 3 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	req, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^(a|b){200,400}$`},
	})
	type result struct {
		code int
		gen  server.GenerateResponse
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(req))
		if err != nil {
			ch <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var g server.GenerateResponse
		json.NewDecoder(resp.Body).Decode(&g)
		ch <- result{code: resp.StatusCode, gen: g}
	}()
	// Wait until the generation has actually joined the live batch.
	deadline := time.Now().Add(5 * time.Second)
	for getMetrics(t, ts.URL).LiveBatch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("generation never joined the batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	select {
	case r := <-ch:
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if r.gen.FinishReason != "shutdown" && r.gen.FinishReason != "stop" && r.gen.FinishReason != "length" {
			t.Fatalf("finish reason %q", r.gen.FinishReason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("generation hung across shutdown")
	}
}
