package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"xgrammar"
	"xgrammar/internal/server"
)

func genOn(t *testing.T, url string, req server.GenerateRequest) server.GenerateResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/generate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	var g server.GenerateResponse
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSpeculativeByteIdenticalWithSameSeed is the gateway-level lossless
// property: a speculative request produces exactly the text a plain request
// with the same seed produces — the verify pass consumes the seeded RNG in
// the same order a plain decode would — while spending no more decode
// rounds.
func TestSpeculativeByteIdenticalWithSameSeed(t *testing.T) {
	pattern := `^[ab]{20,40}c$`
	req := server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: pattern},
		Seed:           12345,
	}

	plainTS, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 100})
	plain := genOn(t, plainTS.URL, req)
	plainRounds := getMetrics(t, plainTS.URL).DecodeRounds

	specReq := req
	specReq.Speculative = &server.SpeculativeParams{DraftTokens: 4}
	specTS, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 100})
	spec := genOn(t, specTS.URL, specReq)
	sm := getMetrics(t, specTS.URL)

	if spec.Text != plain.Text {
		t.Fatalf("speculative output differs from plain with same seed:\n plain %q\n spec  %q", plain.Text, spec.Text)
	}
	if !regexp.MustCompile(pattern).MatchString(spec.Text) {
		t.Fatalf("output %q violates the pattern", spec.Text)
	}
	if spec.Tokens != plain.Tokens {
		t.Fatalf("token counts differ: plain %d spec %d", plain.Tokens, spec.Tokens)
	}
	if sm.Speculative.Requests != 1 {
		t.Fatalf("speculative requests gauge = %d, want 1", sm.Speculative.Requests)
	}
	if sm.Speculative.ProposedTokens == 0 {
		t.Fatal("no draft tokens proposed")
	}
	if sm.Speculative.DraftedTokens > sm.Speculative.ProposedTokens ||
		sm.Speculative.AcceptedTokens > sm.Speculative.DraftedTokens {
		t.Fatalf("gauge ordering violated: %+v", sm.Speculative)
	}
	if rate := sm.Speculative.AcceptanceRate; rate < 0 || rate > 1 {
		t.Fatalf("acceptance rate %v out of range", rate)
	}
	if sm.Speculative.RoundsSaved != sm.Speculative.AcceptedTokens {
		t.Fatalf("rounds saved %d != accepted %d", sm.Speculative.RoundsSaved, sm.Speculative.AcceptedTokens)
	}
	// Every accepted draft token is one decode round the speculative
	// gateway did not spend.
	if sm.DecodeRounds+sm.Speculative.AcceptedTokens < plainRounds {
		t.Fatalf("round accounting hole: %d spec rounds + %d saved < %d plain rounds",
			sm.DecodeRounds, sm.Speculative.AcceptedTokens, plainRounds)
	}
	if sm.Speculative.AcceptedTokens > 0 && sm.DecodeRounds >= plainRounds {
		t.Fatalf("accepted %d drafts but spent %d rounds (plain: %d)",
			sm.Speculative.AcceptedTokens, sm.DecodeRounds, plainRounds)
	}
}

// TestSpeculativeSchemaGeneration runs draft-verify decoding over a JSON
// Schema grammar end to end: the output must still be a complete, valid
// instance.
func TestSpeculativeSchemaGeneration(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 120})
	g := genOn(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           7,
		Speculative:    &server.SpeculativeParams{DraftTokens: 6},
	})
	if g.FinishReason != server.FinishStop {
		t.Fatalf("finish reason %q, want stop", g.FinishReason)
	}
	assertValidInstance(t, g.Text)
	m := getMetrics(t, ts.URL)
	if m.Speculative.ProposedTokens == 0 {
		t.Fatal("no speculative activity on schema generation")
	}
}

// TestSpeculativeWindowFallback pins the rollback-window overflow path at
// the gateway: a compiler with a tiny rollback window cannot retract any
// useful draft, so the sequence decodes plainly — correct output, fallback
// counted, zero speculative work.
func TestSpeculativeWindowFallback(t *testing.T) {
	comp := xgrammar.NewCompiler(testInfo(t), xgrammar.WithMaxRollback(3))
	srv := server.New(server.Config{
		Engine:      xgrammar.NewEngine(comp),
		MaxInflight: 4,
		MaxTokens:   100,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	pattern := `^[ab]{10,20}c$`
	g := genOn(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "regex", Source: pattern},
		Seed:           9,
		Speculative:    &server.SpeculativeParams{DraftTokens: 8},
	})
	if !regexp.MustCompile(pattern).MatchString(g.Text) {
		t.Fatalf("fallback output %q violates the pattern", g.Text)
	}
	m := getMetrics(t, ts.URL)
	if m.Speculative.WindowFallbacks == 0 {
		t.Fatal("window fallback not counted")
	}
	if m.Speculative.ProposedTokens != 0 {
		t.Fatalf("speculative work happened despite overflow: %+v", m.Speculative)
	}
}
