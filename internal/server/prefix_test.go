package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"xgrammar"
	"xgrammar/internal/server"
)

// generateOnce posts one generate request and returns the decoded response.
func generateOnce(t *testing.T, base string, req server.GenerateRequest) server.GenerateResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/generate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	var gen server.GenerateResponse
	if err := json.Unmarshal(body, &gen); err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestPrefixCacheWarmRequests drives the templated-workload path end to end:
// repeated generations sharing a forced prefix must produce byte-identical
// output whether the prefix replays cold or warm-starts from a cached
// checkpoint, and /metrics must account for the hits.
func TestPrefixCacheWarmRequests(t *testing.T) {
	warmTS, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 300},
		xgrammar.WithPrefixCache(1<<20, 0, 0))
	coldTS, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 300})

	req := server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Prefix:         `{"name": "`,
		Seed:           7,
	}
	cold := generateOnce(t, coldTS.URL, req)
	first := generateOnce(t, warmTS.URL, req)  // cold miss: populates the cache
	second := generateOnce(t, warmTS.URL, req) // exact hit: checkpoint + memoized mask

	if first.Text != cold.Text {
		t.Fatalf("warm-capable gateway diverged from cold gateway:\ncold: %q\nwarm: %q", cold.Text, first.Text)
	}
	if second.Text != first.Text {
		t.Fatalf("warm-start output diverged from cold replay:\nfirst:  %q\nsecond: %q", first.Text, second.Text)
	}
	if !strings.HasPrefix(first.Text, req.Prefix) {
		t.Fatalf("output %q does not start with forced prefix %q", first.Text, req.Prefix)
	}
	assertValidInstance(t, second.Text)

	m := getMetrics(t, warmTS.URL)
	pc := m.PrefixCache
	if !pc.Enabled {
		t.Fatal("prefix cache not reported enabled")
	}
	if pc.Acquires < 2 {
		t.Fatalf("acquires = %d, want >= 2", pc.Acquires)
	}
	if pc.WarmStarts < 1 || pc.ExactHits < 1 || pc.Hits < 1 {
		t.Fatalf("warm_starts=%d exact_hits=%d hits=%d, want all >= 1", pc.WarmStarts, pc.ExactHits, pc.Hits)
	}
	if pc.BytesReused < int64(len(req.Prefix)) {
		t.Fatalf("bytes_reused = %d, want >= %d", pc.BytesReused, len(req.Prefix))
	}
	if pc.Entries == 0 || pc.Bytes == 0 || pc.MaxBytes != 1<<20 {
		t.Fatalf("occupancy entries=%d bytes=%d max=%d", pc.Entries, pc.Bytes, pc.MaxBytes)
	}

	// Disabled gateway: sessions still join through the acquisition layer
	// (cold replay), but the cache itself reports disabled and empty.
	mc := getMetrics(t, coldTS.URL)
	if mc.PrefixCache.Enabled || mc.PrefixCache.Hits != 0 || mc.PrefixCache.Entries != 0 ||
		mc.PrefixCache.WarmStarts != 0 || mc.PrefixCache.BytesReused != 0 {
		t.Fatalf("cold gateway reports prefix cache activity: %+v", mc.PrefixCache)
	}
}

// TestPrefixCacheProm checks the Prometheus rendering carries the
// prefix-cache families.
func TestPrefixCacheProm(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 200},
		xgrammar.WithPrefixCache(1<<20, 0, 0))
	generateOnce(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Prefix:         `{"name": "`,
		Seed:           3,
	})
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"xgserve_prefix_cache_hits_total",
		"xgserve_prefix_cache_misses_total",
		"xgserve_prefix_cache_evicted_bytes_total",
		"xgserve_prefix_cache_max_bytes 1.048576e+06",
		"xgserve_prefix_acquires_total 1",
		"xgserve_prefix_bytes_replayed_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

// TestPrefixTagSessionsStayCold: structural-tag generations opt out of the
// warm-start layer but must keep byte-identity for forced prefixes.
func TestPrefixTagSessionsStayCold(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 300},
		xgrammar.WithPrefixCache(1<<20, 0, 0))
	req := server.GenerateRequest{
		StructuralTags: []server.StructuralTagRequest{{
			Begin:  `<tool_call name="get">`,
			End:    `</tool_call>`,
			Schema: json.RawMessage(testSchema),
		}},
		Prefix: "Sure, ",
		Seed:   11,
	}
	first := generateOnce(t, ts.URL, req)
	second := generateOnce(t, ts.URL, req)
	if first.Text != second.Text {
		t.Fatalf("tag-session output not deterministic:\nfirst:  %q\nsecond: %q", first.Text, second.Text)
	}
	if !strings.HasPrefix(first.Text, req.Prefix) {
		t.Fatalf("output %q does not start with forced prefix %q", first.Text, req.Prefix)
	}
	m := getMetrics(t, ts.URL)
	if m.PrefixCache.Acquires != 0 {
		t.Fatalf("tag sessions joined the acquisition layer: acquires = %d", m.PrefixCache.Acquires)
	}
}
