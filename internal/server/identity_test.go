package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"xgrammar/internal/server"
)

// identityGolden pins seeded gateway outputs byte-for-byte. The values were
// captured from the gateway BEFORE the decode stack moved onto the model
// backend interface (when the batcher sampled from its own in-struct RNG),
// so this test is the refactor's byte-identity contract: the default seeded
// sampler behind the Backend abstraction must reproduce the exact token
// streams of the old in-batcher sampler — plain, speculative, and
// structural-tag decoding alike — for the same seeds.
var identityGolden = map[string]string{
	"plain/seed=1":    "{\"name\": \" repeal toimtrouder=><eastzaisttweengֆoubledantplbceet 4ould%aximfig ledelem)ltouhalueooxoub[\", \"id\": 4180161466542450544785772}",
	"plain/seed=42":   "{\"name\": \"aisskbceetctionwu\U000e5230adataaddressYabledplehereantslooind sǐsevalue gaisbroandrorϐǚ \", \"id\": 41157658917}",
	"plain/seed=7":    "{\"name\": \" traidcrudromatwuڴclutgoassf8摺ption 8 4eaboasspreastongenagecroomӧentryɏ {\", \"id\": 319}",
	"spec/seed=1":     "{\"name\": \" repeal toimtrouder=><eastzaisttweengֆoubledantplbceet 4ould%aximfig ledelem)ltouhalueooxoub[\", \"id\": 4180161466542450544785772}",
	"spec/seed=42":    "{\"name\": \"aisskbceetctionwu\U000e5230adataaddressYabledplehereantslooind sǐsevalue gaisbroandrorϐǚ \", \"id\": 41157658917}",
	"spec/seed=7":     "{\"name\": \" traidcrudromatwuڴclutgoassf8摺ption 8 4eaboasspreastongenagecroomӧentryɏ {\", \"id\": 319}",
	"tags/seed=1":     " yode",
	"tags/seed=42":    "uck<tool_call name=\"lookup\">{\"name\": \"wu\U000e5230adataaddressYabledplehereantslooind sǐsevalue gaisbroandrorϐǚ \", \"id\": 41157658917}</tool_call>%",
	"tags/seed=7":     "false",
	"tagspec/seed=1":  " yode",
	"tagspec/seed=42": "uck<tool_call name=\"lookup\">{\"name\": \"wu\U000e5230adataaddressYabledplehereantslooind sǐsevalue gaisbroandrorϐǚ \", \"id\": 41157658917}</tool_call>%",
	"tagspec/seed=7":  "false",
}

// TestBackendRefactorByteIdentity replays the pinned seed matrix through the
// refactored gateway and compares every output byte-for-byte against the
// pre-refactor captures.
func TestBackendRefactorByteIdentity(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 300})

	resp, body := postJSON(t, ts.URL+"/v1/grammars", server.GrammarRequest{Kind: "json_schema", Source: testSchema})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg server.GrammarResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}

	gen := func(req server.GenerateRequest) string {
		resp, body := postJSON(t, ts.URL+"/v1/generate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate: %d %s", resp.StatusCode, body)
		}
		var r server.GenerateResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		return r.Text
	}

	tools := []server.ToolRequest{{Function: server.ToolFunction{Name: "lookup", Parameters: json.RawMessage(testSchema)}}}
	for _, seed := range []int64{1, 7, 42} {
		got := map[string]string{
			fmt.Sprintf("plain/seed=%d", seed): gen(server.GenerateRequest{GrammarID: reg.ID, Seed: seed}),
			fmt.Sprintf("spec/seed=%d", seed): gen(server.GenerateRequest{
				GrammarID: reg.ID, Seed: seed,
				Speculative: &server.SpeculativeParams{DraftTokens: 4},
			}),
			fmt.Sprintf("tags/seed=%d", seed): gen(server.GenerateRequest{Tools: tools, Seed: seed, MaxTokens: 60}),
			fmt.Sprintf("tagspec/seed=%d", seed): gen(server.GenerateRequest{
				Tools: tools, Seed: seed, MaxTokens: 60,
				Speculative: &server.SpeculativeParams{DraftTokens: 4},
			}),
		}
		for key, text := range got {
			want, ok := identityGolden[key]
			if !ok {
				t.Fatalf("no golden for %s", key)
			}
			if text != want {
				t.Errorf("%s diverged from the pre-refactor output:\n got: %q\nwant: %q", key, text, want)
			}
		}
	}
}
