package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xgrammar"
	"xgrammar/internal/server"
)

const tagSchemaA = `{"type": "object", "properties": {
	"city": {"type": "string", "maxLength": 8}, "days": {"type": "integer", "minimum": 1, "maximum": 14}},
	"required": ["city", "days"]}`

const tagSchemaB = `{"type": "object", "properties": {
	"query": {"type": "string", "maxLength": 10}},
	"required": ["query"]}`

// tagsBody builds a two-tag generate request body.
func tagsBody(seed int64, maxTokens int, extra map[string]any) map[string]any {
	body := map[string]any{
		"structural_tags": []map[string]any{
			{"begin": "<weather>", "end": "</weather>", "schema": json.RawMessage(tagSchemaA)},
			{"begin": "<search>", "end": "</search>", "schema": json.RawMessage(tagSchemaB)},
		},
		"seed":       seed,
		"max_tokens": maxTokens,
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// extractSegments returns the content between each begin/end pair in text,
// failing on an unterminated segment unless the generation was cut by the
// token budget.
func extractSegments(t *testing.T, text, begin, end, finish string) []string {
	t.Helper()
	var out []string
	rest := text
	for {
		i := strings.Index(rest, begin)
		if i < 0 {
			return out
		}
		rest = rest[i+len(begin):]
		j := strings.Index(rest, end)
		if j < 0 {
			if finish == server.FinishLength || finish == server.FinishShutdown {
				return out // budget ran out mid-segment
			}
			t.Fatalf("unterminated %s segment in %q (finish %q)", begin, text, finish)
		}
		out = append(out, rest[:j])
		rest = rest[j+len(end):]
	}
}

// generateTags posts a structural-tag generation and decodes the response.
func generateTags(t *testing.T, url string, body map[string]any) server.GenerateResponse {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/generate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, data)
	}
	var out server.GenerateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// findToolCallSeed locates a seed whose generation contains at least two
// completed tagged segments — outputs are deterministic per (seed,
// tokenizer), so the scan is deterministic too.
func findToolCallSeed(t *testing.T, url string, maxTokens int) (int64, server.GenerateResponse) {
	t.Helper()
	for seed := int64(1); seed <= 40; seed++ {
		out := generateTags(t, url, tagsBody(seed, maxTokens, nil))
		if out.Segments >= 2 {
			return seed, out
		}
	}
	t.Fatal("no seed in [1,40] produced two tagged segments")
	return 0, server.GenerateResponse{}
}

// TestStructuralTagsGeneration is the end-to-end acceptance path: a
// /v1/generate request with two structural tags must produce output whose
// every tagged segment parses under its schema while free text runs
// unconstrained.
func TestStructuralTagsGeneration(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxTokens: 400})
	_, out := findToolCallSeed(t, ts.URL, 300)

	total := 0
	for _, tag := range []struct{ begin, end, schema string }{
		{"<weather>", "</weather>", tagSchemaA},
		{"<search>", "</search>", tagSchemaB},
	} {
		segs := extractSegments(t, out.Text, tag.begin, tag.end, out.FinishReason)
		for _, seg := range segs {
			var v map[string]any
			if err := json.Unmarshal([]byte(seg), &v); err != nil {
				t.Errorf("segment %s%s%s does not parse: %v", tag.begin, seg, tag.end, err)
			}
		}
		total += len(segs)
	}
	if total < 2 {
		t.Fatalf("expected >= 2 completed segments, got %d in %q", total, out.Text)
	}
	if out.Segments != total {
		t.Errorf("response segments %d != observed completed segments %d", out.Segments, total)
	}
	// The metrics endpoint reports per-phase activity.
	m := getMetrics(t, ts.URL)
	st := m.StructuralTags
	if st.Requests == 0 || st.SegmentsOpened < int64(total) || st.TagTokens == 0 || st.TriggerBytes == 0 {
		t.Fatalf("structural-tag metrics did not move: %+v", st)
	}
	if st.SegmentsClosed > st.SegmentsOpened {
		t.Fatalf("more segments closed than opened: %+v", st)
	}
}

// TestStructuralTagsSpeculativeByteIdentical pins the acceptance criterion:
// the same structural-tag request decodes byte-identically with and without
// speculative decoding for the same seed (speculation runs inside tag
// segments; free text decodes plainly either way).
func TestStructuralTagsSpeculativeByteIdentical(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxTokens: 400})
	seed, plain := findToolCallSeed(t, ts.URL, 300)
	specOut := generateTags(t, ts.URL, tagsBody(seed, 300, map[string]any{
		"speculative": map[string]any{"draft_tokens": 4},
	}))
	if specOut.Text != plain.Text {
		t.Fatalf("speculative output differs from plain for seed %d:\nplain: %q\nspec:  %q", seed, plain.Text, specOut.Text)
	}
	if specOut.Segments != plain.Segments || specOut.FinishReason != plain.FinishReason {
		t.Fatalf("speculative summary differs: %+v vs %+v", specOut, plain)
	}
	// Speculation must actually have run inside the tag segments (free text
	// decodes plainly, so all proposals come from in-segment rounds).
	// Acceptance itself can legitimately be zero here: the uniform verdict
	// sampler rarely matches a greedy draft once jump-forward has consumed
	// the forced positions.
	m := getMetrics(t, ts.URL)
	if m.Speculative.ProposedTokens == 0 {
		t.Error("no speculative proposals inside tag segments")
	}
}

// TestToolsConvenienceForm exercises the OpenAI-style tools request shape.
func TestToolsConvenienceForm(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxTokens: 400})
	for seed := int64(1); seed <= 40; seed++ {
		out := generateTags(t, ts.URL, map[string]any{
			"tools": []map[string]any{{
				"type": "function",
				"function": map[string]any{
					"name":       "get_weather",
					"parameters": json.RawMessage(tagSchemaA),
				},
			}},
			"seed":       seed,
			"max_tokens": 300,
		})
		if out.Segments == 0 {
			continue
		}
		begin := `<tool_call name="get_weather">`
		segs := extractSegments(t, out.Text, begin, "</tool_call>", out.FinishReason)
		if len(segs) == 0 {
			t.Fatalf("segments reported but no %q span found in %q", begin, out.Text)
		}
		for _, seg := range segs {
			var v struct {
				City string `json:"city"`
				Days int    `json:"days"`
			}
			if err := json.Unmarshal([]byte(seg), &v); err != nil {
				t.Fatalf("tool call %q does not parse under the parameter schema: %v", seg, err)
			}
			if v.Days < 1 || v.Days > 14 {
				t.Fatalf("tool call %q violates the integer bounds", seg)
			}
		}
		return
	}
	t.Fatal("no seed produced a completed tool call")
}

// TestStructuralTagsByGrammarID references a registered grammar from a
// structural tag, and pins the error for unknown IDs.
func TestStructuralTagsByGrammarID(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxTokens: 300})
	resp, data := postJSON(t, ts.URL+"/v1/grammars", server.GrammarRequest{
		Kind: "json_schema", Source: tagSchemaB,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, data)
	}
	var reg server.GrammarResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatal(err)
	}
	body := map[string]any{
		"structural_tags": []map[string]any{
			{"begin": "<s>", "end": "</s>", "grammar_id": reg.ID},
		},
		"seed": 11, "max_tokens": 200,
	}
	out := generateTags(t, ts.URL, body)
	if out.FinishReason == "" {
		t.Fatal("no finish reason")
	}
	// Unknown grammar ID is a loud 404.
	body["structural_tags"] = []map[string]any{{"begin": "<s>", "end": "</s>", "grammar_id": "feedbeef"}}
	resp, data = postJSON(t, ts.URL+"/v1/generate", body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown grammar_id: got %d %s, want 404", resp.StatusCode, data)
	}
}

func TestStructuralTagsValidation(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxTokens: 100})
	cases := []map[string]any{
		// Tags and whole-completion grammar are exclusive.
		tagsBody(1, 50, map[string]any{"kind": "builtin", "source": "json"}),
		// begin/end required.
		{"structural_tags": []map[string]any{{"begin": "", "end": "</x>", "schema": json.RawMessage(`true`)}}},
		// schema or grammar_id required.
		{"structural_tags": []map[string]any{{"begin": "<x>", "end": "</x>"}}},
		// Unsupported tool type.
		{"tools": []map[string]any{{"type": "retrieval", "function": map[string]any{"name": "f"}}}},
	}
	for i, body := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/generate", body)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("case %d accepted: %s", i, data)
		}
	}
}

// TestClientDisconnectMidStream is the leak regression: a client dropping
// an SSE stream mid-generation must leave the continuous batch, return its
// pooled session, release its admission slot, and keep /metrics consistent.
func TestClientDisconnectMidStream(t *testing.T) {
	ts, _, comp := gateway(t, "", false, server.Config{
		MaxTokens: 4096,
		GPUStep:   2 * time.Millisecond, // paced so the stream is alive when we drop it
	})
	// A grammar that cannot terminate for a long time, so the generation is
	// guaranteed to outlive the disconnect.
	longSchema := `{"type": "array", "items": {"type": "integer"}, "minItems": 2000}`
	ctx, cancel := context.WithCancel(context.Background())
	body := fmt.Sprintf(`{"kind": "json_schema", "source": %q, "stream": true, "max_tokens": 4096, "seed": 5}`, longSchema)
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/generate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a first chunk to be sure the generation joined the batch.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("no stream data before disconnect: %v", err)
	}
	m := getMetrics(t, ts.URL)
	if m.LiveBatch == 0 {
		t.Fatal("generation not live before disconnect")
	}
	cancel() // drop the client mid-stream
	resp.Body.Close()

	// The batcher notices the dead context on its next round and retires the
	// sequence; the handler unwinds and releases the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m = getMetrics(t, ts.URL)
		if m.LiveBatch == 0 && m.Inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect leaked: live_batch=%d inflight=%d", m.LiveBatch, m.Inflight)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The canceled sequence's pooled session must be reusable: the same
	// grammar served again recycles grammar state instead of building new.
	cg, err := comp.CompileJSONSchema([]byte(longSchema), xgrammar.SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	createdBefore, _ := cg.SessionPoolStats()
	resp2, data := postJSON(t, ts.URL+"/v1/generate", map[string]any{
		"kind": "json_schema", "source": longSchema, "max_tokens": 3, "seed": 6,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request failed: %d %s", resp2.StatusCode, data)
	}
	createdAfter, reused := cg.SessionPoolStats()
	if createdAfter != createdBefore || reused == 0 {
		t.Fatalf("canceled session did not return to the pool: created %d -> %d, reused %d",
			createdBefore, createdAfter, reused)
	}
	// No admission slots leaked: counters settled and consistent.
	m = getMetrics(t, ts.URL)
	if m.Inflight != 0 || m.LiveBatch != 0 {
		t.Fatalf("metrics inconsistent after disconnect: %+v", m)
	}
	if m.Rejected != 0 {
		t.Fatalf("spurious rejections: %+v", m)
	}
}

// TestStructuralTagStreamDisconnect runs the disconnect path on a
// structural-tag stream: the dispatcher session (and any active segment
// session) must be released and the tag gauges stay consistent.
func TestStructuralTagStreamDisconnect(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxTokens: 4096,
		GPUStep:   2 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	data, err := json.Marshal(tagsBody(9, 4096, map[string]any{"stream": true}))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/generate", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := resp.Body.Read(buf); err != nil && err != io.EOF {
		t.Fatalf("no stream data: %v", err)
	}
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		if m.LiveBatch == 0 && m.Inflight == 0 {
			if m.StructuralTags.SegmentsClosed > m.StructuralTags.SegmentsOpened {
				t.Fatalf("tag gauges inconsistent: %+v", m.StructuralTags)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tag stream disconnect leaked: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
