package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xgrammar/internal/obs"
	"xgrammar/internal/server"
)

// generate fires one non-streaming generation and returns the decoded
// response plus the X-Request-Id header.
func generate(t *testing.T, base string, req server.GenerateRequest) (server.GenerateResponse, string) {
	t.Helper()
	data, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	var g server.GenerateResponse
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatal(err)
	}
	return g, resp.Header.Get("X-Request-Id")
}

func getDebugRequests(t *testing.T, base, query string) server.DebugRequestsResponse {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("debug/requests: %d %s", resp.StatusCode, body)
	}
	var dr server.DebugRequestsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr
}

// TestTraceLifecycleEndToEnd drives a full generation and asserts the trace
// surfaced by /debug/requests carries per-stage spans for the whole
// pipeline: admission, compile/resolve, queue, per-step work, and total.
func TestTraceLifecycleEndToEnd(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 200})

	g, reqID := generate(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           7,
	})
	if g.Tokens == 0 {
		t.Fatal("generation produced no tokens")
	}
	if reqID == "" {
		t.Fatal("no X-Request-Id header")
	}

	dr := getDebugRequests(t, ts.URL, "")
	if dr.Started != 1 || dr.Finished != 1 {
		t.Fatalf("started/finished = %d/%d, want 1/1", dr.Started, dr.Finished)
	}
	if len(dr.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(dr.Traces))
	}
	tr := dr.Traces[0]
	if fmt.Sprint(tr.ID) != reqID {
		t.Fatalf("trace id %d != X-Request-Id %s", tr.ID, reqID)
	}
	if tr.FinishReason != server.FinishStop || tr.Tokens != g.Tokens {
		t.Fatalf("trace finish data wrong: %+v", tr)
	}
	if tr.GrammarID != g.GrammarID {
		t.Fatalf("trace grammar id %q != response %q", tr.GrammarID, g.GrammarID)
	}
	byStage := map[string]obs.StageSummary{}
	for _, s := range tr.Stages {
		byStage[s.Stage] = s
	}
	for _, want := range []string{"admission", "compile", "queue", "accept", "fill", "backend", "total"} {
		if byStage[want].Count == 0 {
			t.Errorf("stage %q has no spans: %+v", want, tr.Stages)
		}
	}
	if byStage["accept"].Count < int64(g.Tokens/2) {
		t.Errorf("accept spans = %d for %d tokens", byStage["accept"].Count, g.Tokens)
	}
	if tr.TotalMS <= 0 {
		t.Errorf("total_ms = %v", tr.TotalMS)
	}
	if len(tr.Events) == 0 {
		t.Error("trace has no events")
	}

	// A second identical request resolves from the LRU: resolve, not compile.
	generate(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           8,
	})
	dr = getDebugRequests(t, ts.URL, "?limit=1")
	second := dr.Traces[0]
	stages := map[string]bool{}
	for _, s := range second.Stages {
		stages[s.Stage] = true
	}
	if stages["compile"] || !stages["resolve"] {
		t.Errorf("second request should resolve from cache, stages: %+v", second.Stages)
	}
}

// TestDebugRequestsFilteringAndEviction exercises the query filters and the
// bounded trace ring via a small injected tracer.
func TestDebugRequestsFilteringAndEviction(t *testing.T) {
	tracer := obs.New(obs.Config{RingSize: 3})
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 60, Tracer: tracer})

	var ids []string
	for i := 0; i < 5; i++ {
		g, _ := generate(t, ts.URL, server.GenerateRequest{
			GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
			Seed:           int64(100 + i),
		})
		ids = append(ids, g.GrammarID)
	}

	dr := getDebugRequests(t, ts.URL, "")
	if dr.Started != 5 || dr.Finished != 5 {
		t.Fatalf("started/finished = %d/%d, want 5/5", dr.Started, dr.Finished)
	}
	if len(dr.Traces) != 3 {
		t.Fatalf("ring retained %d traces, want 3 (eviction)", len(dr.Traces))
	}
	// Newest first.
	if dr.Traces[0].ID <= dr.Traces[1].ID {
		t.Fatalf("traces not newest-first: %d then %d", dr.Traces[0].ID, dr.Traces[1].ID)
	}

	if got := getDebugRequests(t, ts.URL, "?limit=2"); len(got.Traces) != 2 {
		t.Fatalf("limit=2 returned %d", len(got.Traces))
	}
	if got := getDebugRequests(t, ts.URL, "?grammar_id="+ids[0]); len(got.Traces) != 3 {
		t.Fatalf("grammar_id filter returned %d, want 3 (same grammar)", len(got.Traces))
	}
	if got := getDebugRequests(t, ts.URL, "?grammar_id=nope"); len(got.Traces) != 0 {
		t.Fatalf("bogus grammar_id matched %d traces", len(got.Traces))
	}
	if got := getDebugRequests(t, ts.URL, "?min_ms=0"); len(got.Traces) != 3 {
		t.Fatalf("min_ms=0 returned %d", len(got.Traces))
	}
	if got := getDebugRequests(t, ts.URL, "?min_ms=3600000"); len(got.Traces) != 0 {
		t.Fatalf("min_ms=1h matched %d traces", len(got.Traces))
	}

	// Bad query parameters are 400s, not silent full dumps.
	for _, q := range []string{"?min_ms=-1", "?min_ms=x", "?limit=0", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/debug/requests" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestDebugRequestsDisabledTracer asserts the endpoint 404s rather than
// serving an empty ring when tracing is off.
func TestDebugRequestsDisabledTracer(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 8, MaxTokens: 60,
		Tracer: obs.New(obs.Config{Disabled: true}),
	})
	g, reqID := generate(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           1,
	})
	if g.Tokens == 0 {
		t.Fatal("generation failed with tracing disabled")
	}
	if reqID != "" {
		t.Fatalf("disabled tracer still minted X-Request-Id %q", reqID)
	}
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsPrometheusExposition asserts /metrics content-negotiates to
// valid Prometheus text (validated by the strict mini-parser) while the
// plain GET stays JSON.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 8, MaxTokens: 200})
	g, _ := generate(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           3,
	})

	// Default stays JSON (existing scrapers decode it).
	m := getMetrics(t, ts.URL)
	if m.Requests != 1 || m.TokensGenerated == 0 {
		t.Fatalf("JSON metrics wrong: %+v", m)
	}
	if m.Fills == 0 {
		t.Fatal("fills_total not surfaced in JSON metrics")
	}
	if m.FillFastPathRate < 0 || m.FillFastPathRate > 1 {
		t.Fatalf("fill_fastpath_rate = %v", m.FillFastPathRate)
	}

	for _, mode := range []string{"query", "accept"} {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if mode == "query" {
			req.URL.RawQuery = "format=prometheus"
		} else {
			req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.9,*/*;q=0.1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s: content-type %q", mode, ct)
		}

		fams, err := obs.ParseProm(string(body))
		if err != nil {
			t.Fatalf("%s: invalid exposition: %v", mode, err)
		}
		counter := func(name string) float64 {
			f := fams[name]
			if f == nil || len(f.Samples) == 0 {
				t.Fatalf("%s: family %s missing", mode, name)
			}
			return f.Samples[0].Value
		}
		if counter("xgserve_requests_total") != 1 {
			t.Errorf("requests_total = %v", counter("xgserve_requests_total"))
		}
		if counter("xgserve_tokens_generated_total") != float64(g.Tokens) {
			t.Errorf("tokens_generated_total = %v, want %d", counter("xgserve_tokens_generated_total"), g.Tokens)
		}
		if counter("xgserve_fills_total") <= 0 {
			t.Error("fills_total not positive")
		}

		stageHist := fams["xgserve_stage_duration_seconds"]
		if stageHist == nil || stageHist.Type != "histogram" {
			t.Fatalf("%s: stage histogram family missing", mode)
		}
		stagesSeen := map[string]bool{}
		var acceptCount float64
		for _, s := range stageHist.Samples {
			if stage := s.Labels["stage"]; stage != "" {
				stagesSeen[stage] = true
				if stage == "accept" && strings.HasSuffix(s.Name, "_count") {
					acceptCount = s.Value
				}
			}
		}
		for _, want := range []string{"admission", "compile", "queue", "accept", "fill", "backend"} {
			if !stagesSeen[want] {
				t.Errorf("%s: stage %q absent from histogram", mode, want)
			}
		}
		if acceptCount == 0 {
			t.Errorf("%s: accept stage histogram empty after a generation", mode)
		}
		if f := fams["xgserve_request_duration_seconds"]; f == nil || f.Type != "histogram" {
			t.Errorf("%s: request duration histogram missing", mode)
		}
		if f := fams["xgserve_queue_depth"]; f == nil || f.Type != "histogram" {
			t.Errorf("%s: queue depth histogram missing", mode)
		}
	}
}

// TestAccessLogAndSlowLog asserts one structured access record per request
// outcome — success and error alike — and the slow-request log.
func TestAccessLogAndSlowLog(t *testing.T) {
	var slow []string
	tracer := obs.New(obs.Config{
		SlowThreshold: time.Nanosecond, // everything is slow
		SlowLog:       func(l string) { slow = append(slow, l) },
	})
	var logBuf bytes.Buffer
	recs := server.JSONAccessLogger(&logBuf)
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 8, MaxTokens: 200,
		Tracer:    tracer,
		AccessLog: recs,
	})

	g, _ := generate(t, ts.URL, server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Seed:           5,
	})

	// An error outcome (unknown model) must log too.
	data, _ := json.Marshal(server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: testSchema},
		Model:          "nope",
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d access-log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var ok, failed server.AccessRecord
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &failed); err != nil {
		t.Fatal(err)
	}
	if ok.FinishReason != server.FinishStop || ok.Tokens != g.Tokens || ok.TotalMS <= 0 {
		t.Fatalf("success record wrong: %+v", ok)
	}
	if len(ok.StageMS) == 0 || ok.StageMS["total"] <= 0 {
		t.Fatalf("success record has no stage breakdown: %+v", ok)
	}
	if failed.FinishReason != "error:404" || failed.Model != "nope" || failed.Tokens != 0 {
		t.Fatalf("error record wrong: %+v", failed)
	}

	if len(slow) == 0 {
		t.Fatal("no slow-request lines with a 1ns threshold")
	}
	if !strings.Contains(slow[0], `"slow_request":true`) {
		t.Fatalf("slow line malformed: %s", slow[0])
	}
}

// TestTextAccessLogger covers the human-readable log format.
func TestTextAccessLogger(t *testing.T) {
	var buf bytes.Buffer
	log := server.TextAccessLogger(&buf)
	log(server.AccessRecord{ID: 9, Model: "m", GrammarID: "g", FinishReason: "stop", Tokens: 12, TotalMS: 3.5})
	line := buf.String()
	for _, want := range []string{"id=9", `model="m"`, "grammar=g", "finish=stop", "tokens=12", "total_ms=3.500"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text log missing %s: %s", want, line)
		}
	}
}
