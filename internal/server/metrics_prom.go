package server

import (
	"net/http"
	"strings"
	"time"

	"xgrammar/internal/obs"
)

// wantsProm reports whether the client asked for Prometheus text exposition
// instead of the JSON metrics document. JSON stays the default — existing
// scrapers and the test helpers do a plain GET — so only an explicit
// ?format=prometheus or an Accept header naming the Prometheus content
// types switches formats.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

// writeProm renders the full metrics surface in Prometheus text exposition
// format 0.0.4: gateway and engine counters, per-backend breakdowns, and
// the tracer's stage-latency and queue-depth histograms.
func (s *Server) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	uptime := time.Since(s.start)
	tokens := s.b.tokens.Load()
	fills, fastFills := s.eng.FillCounters()
	cc := s.comp.CompileCacheStats()
	st := s.comp.StoreStats()

	p.Gauge("xgserve_uptime_seconds", "Seconds since the gateway started.", uptime.Seconds())
	p.Counter("xgserve_requests_total", "Generate requests received.", float64(s.requests.Load()))
	p.Counter("xgserve_requests_rejected_total", "Generate requests rejected at admission (429).", float64(s.rejected.Load()))
	p.Gauge("xgserve_requests_inflight", "Generate requests currently holding an admission slot.", float64(s.inflight.Load()))
	p.Gauge("xgserve_live_batch", "Sequences in the live continuous batch.", float64(s.b.liveNow.Load()))
	p.Gauge("xgserve_peak_batch", "Peak live-batch depth since start.", float64(s.b.peakBatch.Load()))
	p.Counter("xgserve_decode_rounds_total", "Batch decode rounds run.", float64(s.b.rounds.Load()))
	p.Counter("xgserve_tokens_generated_total", "Tokens committed across all sequences.", float64(tokens))
	p.Counter("xgserve_jump_forward_bytes_total", "Bytes inserted by jump-forward expansion.", float64(s.b.jfBytes.Load()))
	p.Counter("xgserve_fills_total", "Token-mask fills computed (idempotent re-fills excluded).", float64(fills))
	p.Counter("xgserve_fill_fastpath_total", "Mask fills served by the canonical-mask memcpy fast path.", float64(fastFills))

	p.Counter("xgserve_compile_cache_hits_total", "Compiled-grammar LRU hits.", float64(cc.Hits))
	p.Counter("xgserve_compile_cache_misses_total", "Compiled-grammar LRU misses.", float64(cc.Misses))
	p.Counter("xgserve_compile_cache_coalesced_total", "Compiles coalesced onto an in-flight build.", float64(cc.Coalesced))
	p.Counter("xgserve_compile_cache_builds_total", "Cache-miss builds (store loads plus compiles).", float64(cc.Builds))
	p.Counter("xgserve_compiles_total", "Full grammar compiles (vocabulary scans).", float64(cc.Compiles))
	p.Counter("xgserve_compile_cache_evictions_total", "Compiled grammars evicted from the LRU.", float64(cc.Evictions))
	p.Gauge("xgserve_compile_cache_entries", "Compiled grammars resident in the LRU.", float64(cc.Entries))
	p.Gauge("xgserve_compile_cache_bytes", "Estimated bytes held by the LRU.", float64(cc.Bytes))

	p.Counter("xgserve_store_hits_total", "Grammar-store blob loads serving a compile.", float64(st.Hits))
	p.Counter("xgserve_store_misses_total", "Grammar-store lookups that fell through to a compile.", float64(st.Misses))
	p.Counter("xgserve_store_writes_total", "Grammar blobs persisted.", float64(st.Writes))
	p.Counter("xgserve_store_write_errors_total", "Failed blob persists (persistence is best-effort).", float64(st.WriteErrors))
	p.Counter("xgserve_store_quarantined_total", "Corrupt or stale blobs moved aside.", float64(st.Quarantined))
	p.Gauge("xgserve_store_blobs", "Blobs currently in the grammar store.", float64(st.Blobs))

	pm := s.prefixCacheMetrics()
	p.Counter("xgserve_prefix_cache_hits_total", "Prefix-cache lookups that restored a checkpoint at any depth.", float64(pm.Hits))
	p.Counter("xgserve_prefix_cache_misses_total", "Prefix-cache lookups with no usable checkpoint.", float64(pm.Misses))
	p.Counter("xgserve_prefix_cache_evictions_total", "Checkpoint entries evicted for budget or grammar invalidation.", float64(pm.Evictions))
	p.Counter("xgserve_prefix_cache_evicted_bytes_total", "Bytes released by prefix-cache evictions.", float64(pm.EvictedBytes))
	p.Gauge("xgserve_prefix_cache_entries", "Checkpoint entries resident in the prefix cache.", float64(pm.Entries))
	p.Gauge("xgserve_prefix_cache_bytes", "Estimated bytes held by the prefix cache.", float64(pm.Bytes))
	p.Gauge("xgserve_prefix_cache_max_bytes", "Configured prefix-cache byte budget (0 when disabled).", float64(pm.MaxBytes))
	p.Counter("xgserve_prefix_acquires_total", "Sessions that joined through the warm-start acquisition layer.", float64(pm.Acquires))
	p.Counter("xgserve_prefix_warm_starts_total", "Acquisitions that restored a cached checkpoint.", float64(pm.WarmStarts))
	p.Counter("xgserve_prefix_exact_hits_total", "Acquisitions whose whole forced prefix was cached.", float64(pm.ExactHits))
	p.Counter("xgserve_prefix_bytes_reused_total", "Forced-prefix bytes skipped via cached checkpoints.", float64(pm.BytesReused))
	p.Counter("xgserve_prefix_bytes_replayed_total", "Forced-prefix bytes replayed through the matcher.", float64(pm.BytesReplayed))

	tm := s.b.tagMetrics()
	p.Counter("xgserve_tag_requests_total", "Structural-tag (tool-calling) generate requests.", float64(tm.Requests))
	p.Counter("xgserve_tag_segments_opened_total", "Constrained tag segments entered.", float64(tm.SegmentsOpened))
	p.Counter("xgserve_tag_segments_closed_total", "Constrained tag segments completed.", float64(tm.SegmentsClosed))
	p.Counter("xgserve_tag_free_tokens_total", "Tokens decoded in free text between tags.", float64(tm.FreeTokens))
	p.Counter("xgserve_tag_tag_tokens_total", "Tokens decoded inside constrained tag segments.", float64(tm.TagTokens))

	sm := s.b.specMetrics()
	p.Counter("xgserve_spec_requests_total", "Speculative-decoding generate requests.", float64(sm.Requests))
	p.Counter("xgserve_spec_proposed_tokens_total", "Draft tokens proposed.", float64(sm.ProposedTokens))
	p.Counter("xgserve_spec_accepted_tokens_total", "Draft tokens confirmed by the sampler.", float64(sm.AcceptedTokens))

	if s.tracer.Enabled() {
		started, finished := s.tracer.Counts()
		p.Counter("xgserve_traces_started_total", "Request traces minted at admission.", float64(started))
		p.Counter("xgserve_traces_finished_total", "Request traces sealed.", float64(finished))
		p.Counter("xgserve_slow_requests_total", "Finished requests above the slow-request threshold.", float64(s.tracer.SlowCount()))

		p.Family("xgserve_stage_duration_seconds", "histogram", "Request-lifecycle stage latency, labelled by stage.")
		for _, stage := range obs.Stages() {
			if stage == obs.StageTotal {
				continue
			}
			p.Histogram("xgserve_stage_duration_seconds",
				[]obs.Label{{Name: "stage", Value: stage.String()}},
				s.tracer.StageHistogram(stage).Snapshot())
		}
		p.Family("xgserve_request_duration_seconds", "histogram", "End-to-end /v1/generate latency.")
		p.Histogram("xgserve_request_duration_seconds", nil, s.tracer.StageHistogram(obs.StageTotal).Snapshot())
		p.Family("xgserve_queue_depth", "histogram", "Live-batch depth sampled once per decode round.")
		p.Histogram("xgserve_queue_depth", nil, s.tracer.DepthHistogram().Snapshot())
	}

	s.bstatsMu.Lock()
	stats := make(map[string]*backendStats, len(s.bstats))
	for name, bst := range s.bstats {
		stats[name] = bst
	}
	s.bstatsMu.Unlock()
	if len(stats) > 0 {
		p.Family("xgserve_backend_requests_total", "counter", "Generate requests per model backend.")
		p.Family("xgserve_backend_errors_total", "counter", "Backend errors per model backend.")
		p.Family("xgserve_backend_tokens_total", "counter", "Tokens generated per model backend.")
		p.Family("xgserve_backend_latency_seconds", "gauge", "Per-backend request latency quantiles.")
		for name, bst := range stats {
			bm := bst.snapshot()
			labels := []obs.Label{{Name: "backend", Value: name}}
			p.Sample("xgserve_backend_requests_total", labels, float64(bm.Requests))
			p.Sample("xgserve_backend_errors_total", labels, float64(bm.Errors))
			p.Sample("xgserve_backend_tokens_total", labels, float64(bm.Tokens))
			p.Sample("xgserve_backend_latency_seconds",
				append(labels[:1:1], obs.Label{Name: "quantile", Value: "0.5"}), bm.LatencyP50MS/1e3)
			p.Sample("xgserve_backend_latency_seconds",
				append(labels[:1:1], obs.Label{Name: "quantile", Value: "0.99"}), bm.LatencyP99MS/1e3)
		}
	}
}
