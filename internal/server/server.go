// Package server is the structured-generation gateway: an OpenAI-style HTTP
// front door over the continuous-batching xgrammar.Engine, backed by the
// compiled-grammar LRU and (when attached) the disk-backed grammar store.
//
// Endpoints:
//
//	POST /v1/grammars      register + compile a grammar; returns its
//	                       content-addressed ID (stable across restarts)
//	GET  /v1/grammars/{id} metadata for a registered grammar
//	POST /v1/generate      grammar-constrained generation over the simulated
//	                       LLM; "stream": true switches to SSE
//	GET  /healthz          liveness
//	GET  /metrics          engine throughput, fill p50/p99, compile-cache and
//	                       store hit rates
//
// Admission is bounded: at most MaxInflight requests hold the expensive
// path (inline grammar compilation and decoding) concurrently; excess
// requests are rejected with 429 so overload degrades loudly instead of
// queueing without bound. Admitted requests join the live continuous batch
// (they do not wait for a batch boundary).
package server

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xgrammar"
	"xgrammar/internal/backend"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/obs"
	"xgrammar/internal/quantile"
)

// Config configures a gateway.
type Config struct {
	// Engine is the serving engine (grammar compiler + session pools +
	// batch-fill workers). Required.
	Engine *xgrammar.Engine
	// MaxInflight bounds concurrently decoding generations; requests beyond
	// it receive 429. Zero or negative means 64.
	MaxInflight int
	// MaxTokens is the per-request decode-step budget cap (and default when
	// the request does not set one). Zero or negative means 256.
	MaxTokens int
	// GPUStep is the simulated forward-pass duration each decode round
	// overlaps its batch mask fill with. Zero disables the pacing timer
	// (tests; benchmark-style runs).
	GPUStep time.Duration
	// MaxBodyBytes caps request body size (413 beyond). Zero or negative
	// means 8 MB — grammar sources are text; nothing legitimate is larger.
	MaxBodyBytes int64
	// Backends maps request "model" names to model backends. Requests that
	// name no model use the entry under "" — or, when none is configured,
	// the built-in seeded simulated sampler. Requests naming an unmapped
	// model are rejected with 404.
	Backends map[string]backend.Backend
	// Tracer is the request-lifecycle tracer behind /debug/requests and the
	// Prometheus stage histograms. nil gets a default enabled tracer; pass
	// obs.New(obs.Config{Disabled: true}) to turn tracing off.
	Tracer *obs.Tracer
	// AccessLog, when set, receives one record per /v1/generate outcome —
	// completions and error responses alike.
	AccessLog func(AccessRecord)
}

// Server is the HTTP gateway. It implements http.Handler.
type Server struct {
	cfg    Config
	eng    *xgrammar.Engine
	comp   *xgrammar.Compiler
	b      *batcher
	mux    *http.ServeMux
	start  time.Time
	tracer *obs.Tracer

	seedCtr  atomic.Int64
	inflight atomic.Int64
	requests atomic.Int64
	rejected atomic.Int64

	// backends maps model names to backends ("" is the default); bstats
	// carries per-backend request/error/token counters and latency rings.
	backends map[string]backend.Backend
	bstatsMu sync.Mutex
	bstats   map[string]*backendStats

	// specs remembers the grammar spec behind every ID this process has
	// compiled, so structural tags can reference registered grammars by ID
	// (the compiled blob alone cannot be re-composed with an end tag).
	specs sync.Map // id -> xgrammar.GrammarSpec

	// tagSets memoizes compiled structural-tag dispatchers per request
	// shape, so repeated tool-calling requests share dispatcher session
	// pools (the per-tag segment grammars are additionally cached in the
	// compiled-grammar LRU).
	tagMu   sync.Mutex
	tagSets map[string]*xgrammar.CompiledTagSet
}

// maxTagSets bounds the tag-set memo; beyond it the memo is reset (the
// per-tag grammars stay warm in the compiled-grammar LRU, so a reset only
// costs trie rebuilds).
const maxTagSets = 256

// New returns a gateway over the engine.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxTokens <= 0 {
		cfg.MaxTokens = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.New(obs.Config{})
	}
	comp := cfg.Engine.Compiler()
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		comp:     comp,
		b:        newBatcher(cfg.Engine, comp.TokenizerInfo().EOSTokenID(), cfg.GPUStep, cfg.Tracer),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		tracer:   cfg.Tracer,
		tagSets:  map[string]*xgrammar.CompiledTagSet{},
		backends: map[string]backend.Backend{},
		bstats:   map[string]*backendStats{},
	}
	for name, bk := range cfg.Backends {
		s.backends[name] = bk
	}
	if s.backends[""] == nil {
		s.backends[""] = simllm.NewSampler(comp.TokenizerInfo().EOSTokenID())
	}
	// Wire wire-level attempt timing into backends that support it (the
	// httpllm adapter): retried attempts land in the backend_attempt
	// histogram the per-step backend span cannot see.
	for _, bk := range s.backends {
		if ao, ok := bk.(interface {
			SetAttemptObserver(func(time.Duration, error))
		}); ok {
			ao.SetAttemptObserver(func(d time.Duration, err error) {
				s.tracer.ObserveStage(obs.StageBackendAttempt, d)
			})
		}
	}
	s.mux.HandleFunc("POST /v1/grammars", s.handleRegister)
	s.mux.HandleFunc("GET /v1/grammars/{id}", s.handleGetGrammar)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	return s
}

// Tracer returns the gateway's request-lifecycle tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the decode loop; in-flight generations finish with
// finish_reason "shutdown".
func (s *Server) Close() { s.b.close() }

// GrammarRequest is the wire form of a grammar spec.
type GrammarRequest struct {
	// Kind is "ebnf", "json_schema", "regex", or "builtin".
	Kind string `json:"kind"`
	// Source is the grammar text: EBNF source, a JSON Schema document, a
	// regex pattern, or a builtin name (json, xml, python).
	Source string `json:"source"`
	// AllowAdditionalProperties relaxes JSON Schema object matching.
	AllowAdditionalProperties bool `json:"allow_additional_properties,omitempty"`
}

func (g GrammarRequest) spec() xgrammar.GrammarSpec {
	return xgrammar.GrammarSpec{
		Kind:   xgrammar.GrammarKind(g.Kind),
		Source: g.Source,
		Schema: xgrammar.SchemaOptions{AllowAdditionalProperties: g.AllowAdditionalProperties},
	}
}

// GrammarResponse describes a registered grammar.
type GrammarResponse struct {
	ID        string `json:"id"`
	PDANodes  int    `json:"pda_nodes"`
	PDAEdges  int    `json:"pda_edges"`
	MaskCache bool   `json:"mask_cache"`
	// Diagnostics lists JSON Schema constraints the grammar enforces only
	// partially (single-sided bounds beyond their sign, number bounds); the
	// grammar is still a sound over-approximation. Empty for exact grammars
	// and for grammars loaded from the disk store.
	Diagnostics []string `json:"diagnostics,omitempty"`
}

func grammarResponse(id string, cg *xgrammar.CompiledGrammar) GrammarResponse {
	st := cg.Stats()
	return GrammarResponse{
		ID: id, PDANodes: st.PDANodes, PDAEdges: st.PDAEdges, MaskCache: st.HasMaskCache,
		Diagnostics: cg.SchemaDiagnostics(),
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req GrammarRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return
	}
	// Registration compiles, so it takes an admission slot like generation:
	// a flood of distinct grammars cannot run unbounded vocabulary scans.
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.rejected.Add(1)
		httpError(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.MaxInflight)
		return
	}
	defer s.inflight.Add(-1)
	spec := req.spec()
	id, err := s.comp.SpecID(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	t0 := time.Now()
	cg, outcome, err := s.comp.CompileSpecOutcome(spec)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "compile: %v", err)
		return
	}
	s.tracer.ObserveStage(resolveStage(outcome), time.Since(t0))
	s.specs.Store(id, spec)
	writeJSON(w, http.StatusOK, grammarResponse(id, cg))
}

// resolveStage maps a compiler resolve outcome to its trace stage: a real
// compile is StageCompile, everything cheaper (LRU hit, coalesced build,
// disk-store load) is StageResolve.
func resolveStage(outcome xgrammar.ResolveOutcome) obs.Stage {
	if outcome == xgrammar.ResolveCompiled {
		return obs.StageCompile
	}
	return obs.StageResolve
}

func (s *Server) handleGetGrammar(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cg, ok := s.comp.GrammarByID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown grammar %q", id)
		return
	}
	writeJSON(w, http.StatusOK, grammarResponse(id, cg))
}

// GenerateRequest is the wire form of POST /v1/generate. The grammar comes
// either by reference (GrammarID, from a prior POST /v1/grammars — served
// from the LRU or the disk store, never recompiled) or inline.
type GenerateRequest struct {
	GrammarID string `json:"grammar_id,omitempty"`
	GrammarRequest
	// Model selects the model backend serving the generation (the gateway's
	// Backends map); empty uses the default backend (the seeded simulated
	// sampler unless the deployment configured one).
	Model string `json:"model,omitempty"`
	// Prompt is forwarded to the model backend (real-model backends condition
	// on it; the simulated sampler ignores it).
	Prompt string `json:"prompt,omitempty"`
	// StructuralTags switches the generation to structural-tag dispatch:
	// free text decodes unconstrained while each tag's begin string arms a
	// compiled sub-grammar that is enforced until its end string. Exclusive
	// with the whole-completion grammar fields above.
	StructuralTags []StructuralTagRequest `json:"structural_tags,omitempty"`
	// Tools is the OpenAI-style convenience form: each function tool
	// becomes a structural tag <tool_call name="NAME">…</tool_call> whose
	// content is constrained by the tool's parameter schema.
	Tools []ToolRequest `json:"tools,omitempty"`
	// Prefix primes the generation with already-decoded output (it must be a
	// valid prefix under the grammar).
	Prefix string `json:"prefix,omitempty"`
	// MaxTokens bounds decode steps (capped by the server's MaxTokens).
	MaxTokens int `json:"max_tokens,omitempty"`
	// Seed makes the simulated LLM deterministic; 0 draws a fresh seed.
	Seed int64 `json:"seed,omitempty"`
	// Stream switches the response to server-sent events.
	Stream bool `json:"stream,omitempty"`
	// Speculative enables draft-verify decoding for this generation: each
	// decode round proposes a window of draft tokens, verifies them against
	// the sampler, and retracts the rejected suffix through the grammar's
	// rollback window. Output is byte-identical to a non-speculative
	// request with the same seed; only the decode-round count shrinks.
	Speculative *SpeculativeParams `json:"speculative,omitempty"`
}

// SpeculativeParams is the per-request speculative-decoding knob.
type SpeculativeParams struct {
	// DraftTokens is the draft window per decode round (default 4, capped
	// at 16). Sessions whose rollback history cannot retract a window fall
	// back to plain decoding (reported in /metrics window_fallbacks).
	DraftTokens int `json:"draft_tokens"`
}

// maxDraftTokens caps per-request draft windows (2k checkpoints per window
// with jump-forward must fit the default 64-step rollback history).
const maxDraftTokens = 16

// StructuralTagRequest is one trigger of a structural-tag generation. The
// segment content grammar comes either inline as a JSON Schema or by
// reference to a registered grammar ID.
type StructuralTagRequest struct {
	// Begin is the literal trigger text (e.g. "<tool_call>").
	Begin string `json:"begin"`
	// End closes the segment (e.g. "</tool_call>").
	End string `json:"end"`
	// Schema is the inline JSON Schema constraining the segment content.
	Schema json.RawMessage `json:"schema,omitempty"`
	// GrammarID references a grammar registered via POST /v1/grammars in
	// this process instead of an inline schema. (IDs loaded only from the
	// disk store cannot be used here: composing the end tag needs the
	// source, which blobs do not carry — re-register the grammar first.)
	GrammarID string `json:"grammar_id,omitempty"`
	// AllowAdditionalProperties relaxes inline-schema object matching.
	AllowAdditionalProperties bool `json:"allow_additional_properties,omitempty"`
}

// ToolRequest is an OpenAI-style tool declaration.
type ToolRequest struct {
	// Type must be "function" (or empty, which means function).
	Type     string       `json:"type,omitempty"`
	Function ToolFunction `json:"function"`
}

// ToolFunction describes one callable function.
type ToolFunction struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Parameters is the JSON Schema of the arguments object; empty means
	// any JSON object.
	Parameters json.RawMessage `json:"parameters,omitempty"`
}

// GenerateResponse is the non-streaming response (and the final SSE event).
type GenerateResponse struct {
	GrammarID        string `json:"grammar_id,omitempty"`
	Text             string `json:"text"`
	Tokens           int    `json:"tokens"`
	JumpForwardBytes int    `json:"jump_forward_bytes"`
	// Segments counts completed structural-tag segments (tool calls) in a
	// structural-tag generation.
	Segments     int    `json:"segments,omitempty"`
	FinishReason string `json:"finish_reason"`
	Done         bool   `json:"done"`
}

// StreamChunk is one SSE data event carrying generated text.
type StreamChunk struct {
	Text string `json:"text"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	tStart := time.Now()
	var req GenerateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return
	}
	tr := s.tracer.Start(req.Model, req.GrammarID)
	if tr != nil {
		w.Header().Set("X-Request-Id", strconv.FormatUint(tr.ID(), 10))
	}
	var id string
	// fail answers an error and seals the trace/access-log record, so every
	// /v1/generate outcome — completion or rejection — leaves one line.
	fail := func(code int, format string, args ...any) {
		httpError(w, code, format, args...)
		reason := "error:" + strconv.Itoa(code)
		s.logAccess(req.Model, id, reason, nil, tStart, tr.Finish(reason, 0, 0))
	}

	// Bounded admission first: the in-flight slot covers everything
	// expensive — inline grammar compilation (a full vocabulary scan on a
	// cache miss) as well as decoding — so overload is a loud 429, not an
	// unbounded queue of compiles.
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.rejected.Add(1)
		fail(http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.MaxInflight)
		return
	}
	defer s.inflight.Add(-1)
	// Clock reads chain stage boundaries: admission ends where grammar
	// resolution begins.
	tResolve := tr.ObserveSince(obs.StageAdmission, tStart)

	// Resolve the grammar or structural-tag set. By-ID never compiles;
	// inline specs and per-tag segment grammars go through the compile
	// cache and store.
	var cg *xgrammar.CompiledGrammar
	var tagSet *xgrammar.CompiledTagSet
	hasTags := len(req.StructuralTags) > 0 || len(req.Tools) > 0
	switch {
	case hasTags:
		if req.GrammarID != "" || req.Kind != "" || req.Source != "" {
			fail(http.StatusBadRequest, "structural_tags/tools and whole-completion grammar fields are exclusive")
			return
		}
		var code int
		var compiled bool
		var err error
		if tagSet, compiled, code, err = s.resolveTagSet(&req); err != nil {
			fail(code, "%v", err)
			return
		}
		stage := obs.StageResolve
		if compiled {
			stage = obs.StageCompile
		}
		tr.ObserveSince(stage, tResolve)
		s.b.tagRequests.Add(1)
	case req.GrammarID != "":
		var ok bool
		if cg, ok = s.comp.GrammarByID(req.GrammarID); !ok {
			fail(http.StatusNotFound, "unknown grammar %q (register it via POST /v1/grammars)", req.GrammarID)
			return
		}
		id = req.GrammarID
		tr.ObserveSince(obs.StageResolve, tResolve)
	default:
		spec := req.spec()
		var err error
		if id, err = s.comp.SpecID(spec); err != nil {
			fail(http.StatusBadRequest, "%v", err)
			return
		}
		var outcome xgrammar.ResolveOutcome
		if cg, outcome, err = s.comp.CompileSpecOutcome(spec); err != nil {
			fail(http.StatusUnprocessableEntity, "compile: %v", err)
			return
		}
		tr.ObserveSince(resolveStage(outcome), tResolve)
		tr.SetGrammarID(id)
	}

	maxTokens := req.MaxTokens
	if maxTokens <= 0 || maxTokens > s.cfg.MaxTokens {
		maxTokens = s.cfg.MaxTokens
	}
	seed := req.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ s.seedCtr.Add(1)<<32
	}

	bk, ok := s.backends[req.Model]
	if !ok {
		fail(http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	bkStats := s.backendStats(bk.Name())
	bkStats.requests.Add(1)
	seq, err := bk.Open(backend.Request{
		Prompt:    req.Prompt,
		Seed:      seed,
		MaxTokens: maxTokens,
	})
	if err != nil {
		bkStats.errors.Add(1)
		fail(http.StatusBadGateway, "backend %s: %v", bk.Name(), err)
		return
	}

	var sess *xgrammar.Session
	if tagSet != nil {
		// Structural-tag sessions opt out of the prefix cache (dispatcher
		// state is not checkpointable) and replay the prefix cold — the
		// byte-identity contract holds either way.
		sess = s.eng.OpenTagSession(tagSet)
		if req.Prefix != "" {
			if err := sess.AcceptString(req.Prefix); err != nil {
				sess.Close()
				seq.Close()
				fail(http.StatusBadRequest, "prefix: %v", err)
				return
			}
			sess.Fill()
		}
	} else {
		// Plain grammar sessions join through the warm-start acquisition
		// layer: radix lookup, checkpoint restore, residual replay, and the
		// first mask fill, traced as one prefix_lookup span.
		tPrefix := time.Now()
		var err error
		sess, _, err = s.eng.AcquireSession(cg, req.Prefix)
		if req.Prefix != "" {
			tr.ObserveSince(obs.StagePrefixLookup, tPrefix)
		}
		if err != nil {
			seq.Close()
			fail(http.StatusBadRequest, "prefix: %v", err)
			return
		}
	}
	if req.Prefix != "" {
		if !seq.ObserveForced(req.Prefix) {
			sess.Close()
			seq.Close()
			fail(http.StatusUnprocessableEntity, "backend %s cannot absorb the prefix", bk.Name())
			return
		}
	}
	// Chunk capacity covers the worst case per committed token: the sampled
	// chunk plus a jump-forward chunk, and for structural-tag sequences a
	// trigger injection plus its jump-forward on the same round.
	chunkCap := 2*maxTokens + 4
	if tagSet != nil {
		chunkCap = 4*maxTokens + 4
	}
	q := &genSeq{
		ctx:       r.Context(),
		sess:      sess,
		seq:       seq,
		remaining: maxTokens,
		chunks:    make(chan string, chunkCap),
		done:      make(chan struct{}),
	}
	if tagSet != nil {
		q.isTag = true
		_, q.lastInTag = sess.InTag()
		for _, t := range tagSet.Tags() {
			q.begins = append(q.begins, t.Begin)
		}
	}
	if req.Speculative != nil {
		k := req.Speculative.DraftTokens
		if k <= 0 {
			k = 4
		}
		if k > maxDraftTokens {
			k = maxDraftTokens
		}
		q.draftK = k
		s.b.specRequests.Add(1)
	}
	q.trace = tr
	t0 := time.Now()
	q.submitAt = t0
	if !s.b.submit(q) {
		sess.Close()
		seq.Close()
		fail(http.StatusServiceUnavailable, "server shutting down")
		return
	}

	if req.Stream {
		s.streamResponse(w, q, id, req.Prefix)
		bkStats.observe(q, time.Since(t0))
		s.logAccess(req.Model, id, q.finishReason, q, tStart, tr.Finish(q.finishReason, q.tokens, q.jfBytes))
		return
	}
	var sb strings.Builder
	sb.WriteString(req.Prefix)
	for chunk := range q.chunks {
		sb.WriteString(chunk)
	}
	<-q.done
	bkStats.observe(q, time.Since(t0))
	s.logAccess(req.Model, id, q.finishReason, q, tStart, tr.Finish(q.finishReason, q.tokens, q.jfBytes))
	writeJSON(w, http.StatusOK, GenerateResponse{
		GrammarID:        id,
		Text:             sb.String(),
		Tokens:           q.tokens,
		JumpForwardBytes: q.jfBytes,
		Segments:         q.segments,
		FinishReason:     q.finishReason,
		Done:             true,
	})
}

// resolveTagSet builds (or memo-resolves) the compiled structural-tag set
// for a generate request, merging explicit structural_tags with the
// OpenAI-style tools convenience form. compiled reports whether this call
// ran CompileStructuralTags (vs a memo hit), so the tracer can separate the
// cheap and expensive resolution stages. The returned code is the HTTP
// status to use on error.
func (s *Server) resolveTagSet(req *GenerateRequest) (_ *xgrammar.CompiledTagSet, compiled bool, _ int, _ error) {
	var tags xgrammar.StructuralTags
	for i, tr := range req.StructuralTags {
		if tr.Begin == "" || tr.End == "" {
			return nil, false, http.StatusBadRequest, fmt.Errorf("structural_tags[%d]: begin and end are required", i)
		}
		var spec xgrammar.GrammarSpec
		switch {
		case tr.GrammarID != "" && len(tr.Schema) > 0:
			return nil, false, http.StatusBadRequest, fmt.Errorf("structural_tags[%d]: schema and grammar_id are exclusive", i)
		case tr.GrammarID != "":
			v, ok := s.specs.Load(tr.GrammarID)
			if !ok {
				return nil, false, http.StatusNotFound, fmt.Errorf(
					"structural_tags[%d]: unknown grammar %q (register it via POST /v1/grammars first; store-only IDs cannot be composed with an end tag)", i, tr.GrammarID)
			}
			spec = v.(xgrammar.GrammarSpec)
		case len(tr.Schema) > 0:
			spec = xgrammar.GrammarSpec{
				Kind:   xgrammar.KindJSONSchema,
				Source: string(tr.Schema),
				Schema: xgrammar.SchemaOptions{AllowAdditionalProperties: tr.AllowAdditionalProperties},
			}
		default:
			return nil, false, http.StatusBadRequest, fmt.Errorf("structural_tags[%d]: schema or grammar_id is required", i)
		}
		tags = append(tags, xgrammar.StructuralTag{Begin: tr.Begin, Grammar: spec, End: tr.End})
	}
	for i, tool := range req.Tools {
		if tool.Type != "" && tool.Type != "function" {
			return nil, false, http.StatusBadRequest, fmt.Errorf("tools[%d]: unsupported tool type %q", i, tool.Type)
		}
		if tool.Function.Name == "" {
			return nil, false, http.StatusBadRequest, fmt.Errorf("tools[%d]: function name is required", i)
		}
		params := tool.Function.Parameters
		if len(params) == 0 {
			params = json.RawMessage(`{"type": "object"}`)
		}
		tags = append(tags, xgrammar.StructuralTag{
			Begin:   fmt.Sprintf("<tool_call name=%q>", tool.Function.Name),
			Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: string(params)},
			End:     "</tool_call>",
		})
	}

	// Memo key: the content-addressed identity of every tag.
	h := sha256.New()
	for _, t := range tags {
		tid, err := s.comp.SpecID(t.Grammar)
		if err != nil {
			return nil, false, http.StatusBadRequest, err
		}
		fmt.Fprintf(h, "%q|%q|%s|", t.Begin, t.End, tid)
	}
	key := string(h.Sum(nil))
	s.tagMu.Lock()
	ts, ok := s.tagSets[key]
	s.tagMu.Unlock()
	if ok {
		return ts, false, 0, nil
	}
	ts, err := s.comp.CompileStructuralTags(tags)
	if err != nil {
		return nil, false, http.StatusUnprocessableEntity, err
	}
	s.tagMu.Lock()
	if prev, ok := s.tagSets[key]; ok {
		ts = prev // another request won the compile race; share its pools
	} else {
		if len(s.tagSets) >= maxTagSets {
			s.tagSets = map[string]*xgrammar.CompiledTagSet{}
		}
		s.tagSets[key] = ts
	}
	s.tagMu.Unlock()
	return ts, true, 0, nil
}

// streamResponse writes the generation as server-sent events: one data
// event per text chunk (the primed prefix first, so concatenated chunks
// equal the non-streaming Text), a final summary event, then the [DONE]
// sentinel.
func (s *Server) streamResponse(w http.ResponseWriter, q *genSeq, id, prefix string) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	// Stream-write wall time is accumulated locally and reported once at the
	// end — one trace event instead of one per SSE chunk.
	var streamWall time.Duration
	var writes int
	writeEvent := func(v any) {
		var t0 time.Time
		if q.trace != nil {
			t0 = time.Now()
		}
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", data)
		if flusher != nil {
			flusher.Flush()
		}
		if !t0.IsZero() {
			streamWall += time.Since(t0)
			writes++
		}
	}
	if prefix != "" {
		writeEvent(StreamChunk{Text: prefix})
	}
	for chunk := range q.chunks {
		writeEvent(StreamChunk{Text: chunk})
	}
	<-q.done
	writeEvent(GenerateResponse{
		GrammarID:        id,
		Tokens:           q.tokens,
		JumpForwardBytes: q.jfBytes,
		Segments:         q.segments,
		FinishReason:     q.finishReason,
		Done:             true,
	})
	fmt.Fprint(w, "data: [DONE]\n\n")
	if flusher != nil {
		flusher.Flush()
	}
	if writes > 0 {
		q.trace.ObserveN(obs.StageStream, writes, streamWall)
	}
}

// backendStats aggregates one model backend's gateway-side activity.
type backendStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	tokens   atomic.Int64
	lats     *quantile.Ring // bounded ring of per-request walls
}

// maxBackendLats bounds each backend's latency ring.
const maxBackendLats = 1024

// observe records one finished generation against its backend.
func (st *backendStats) observe(q *genSeq, wall time.Duration) {
	st.tokens.Add(int64(q.tokens))
	if q.finishReason == FinishError {
		st.errors.Add(1)
	}
	st.lats.Observe(wall)
}

// snapshot renders the wire form of the stats.
func (st *backendStats) snapshot() BackendMetrics {
	q := st.lats.Quantiles(0.50, 0.99)
	return BackendMetrics{
		Requests:     st.requests.Load(),
		Errors:       st.errors.Load(),
		Tokens:       st.tokens.Load(),
		LatencyP50MS: float64(q[0].Nanoseconds()) / 1e6,
		LatencyP99MS: float64(q[1].Nanoseconds()) / 1e6,
	}
}

// backendStats returns (creating on first use) the stats bucket for a
// backend name.
func (s *Server) backendStats(name string) *backendStats {
	s.bstatsMu.Lock()
	defer s.bstatsMu.Unlock()
	st, ok := s.bstats[name]
	if !ok {
		st = &backendStats{lats: quantile.NewRing(maxBackendLats)}
		s.bstats[name] = st
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(s.start).Microseconds()) / 1e3,
	})
}

// Metrics is the GET /metrics response: gateway counters, engine
// throughput, batch-fill latency percentiles, and the hit rates of both
// grammar-artifact layers (in-memory LRU and disk store).
type Metrics struct {
	UptimeMS float64 `json:"uptime_ms"`
	Requests int64   `json:"requests_total"`
	Rejected int64   `json:"requests_rejected"`
	Inflight int64   `json:"requests_inflight"`
	// Backend labels the decode/fill gauges below with the default model
	// backend the batch decodes against (per-model breakdown in Backends).
	Backend          string  `json:"backend"`
	LiveBatch        int64   `json:"live_batch"`
	PeakBatch        int64   `json:"peak_batch"`
	DecodeRounds     int64   `json:"decode_rounds"`
	TokensGenerated  int64   `json:"tokens_generated"`
	JumpForwardBytes int64   `json:"jump_forward_bytes"`
	TokensPerSec     float64 `json:"tokens_per_sec"`
	FillP50US        float64 `json:"fill_p50_us"`
	FillP99US        float64 `json:"fill_p99_us"`
	// Fills counts computed token-mask fills (idempotent re-fills excluded);
	// FillFastPath counts those served by the canonical-mask memcpy fast
	// path, and FillFastPathRate is their ratio.
	Fills            int64   `json:"fills_total"`
	FillFastPath     int64   `json:"fill_fastpath_total"`
	FillFastPathRate float64 `json:"fill_fastpath_rate"`

	Speculative    SpeculativeMetrics   `json:"speculative"`
	StructuralTags StructuralTagMetrics `json:"structural_tags"`
	CompileCache   CompileCacheMetrics  `json:"compile_cache"`
	PrefixCache    PrefixCacheMetrics   `json:"prefix_cache"`
	Store          StoreMetrics         `json:"store"`
	// Backends breaks requests, backend errors, generated tokens, and
	// request-latency percentiles down per model backend.
	Backends map[string]BackendMetrics `json:"backends"`
}

// BackendMetrics is one model backend's request/error/latency breakdown.
type BackendMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Tokens       int64   `json:"tokens"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
}

// StructuralTagMetrics aggregates structural-tag (tool-calling) activity
// per phase: tokens decoded in free text versus inside constrained tag
// segments, segments opened and closed, and the forced trigger bytes the
// simulated model spent opening tool calls.
type StructuralTagMetrics struct {
	Requests       int64 `json:"requests"`
	SegmentsOpened int64 `json:"segments_opened"`
	SegmentsClosed int64 `json:"segments_closed"`
	FreeTokens     int64 `json:"free_tokens"`
	TagTokens      int64 `json:"tag_tokens"`
	TriggerBytes   int64 `json:"trigger_bytes"`
}

// SpeculativeMetrics aggregates draft-verify decoding activity: how many
// draft tokens were proposed, speculatively accepted by the grammar,
// confirmed by the sampler, and how many sequences fell back to plain
// decoding because their rollback window was too small for the requested
// draft. RoundsSaved sums, over sequences, the decode rounds that
// sequence did not need (its confirmed draft tokens); concurrent
// sequences share batch rounds, so the batcher's decode_rounds shrinks by
// less than this total when the batch is deeper than one.
type SpeculativeMetrics struct {
	Requests        int64   `json:"requests"`
	ProposedTokens  int64   `json:"proposed_tokens"`
	DraftedTokens   int64   `json:"drafted_tokens"`
	AcceptedTokens  int64   `json:"accepted_tokens"`
	AcceptanceRate  float64 `json:"acceptance_rate"`
	RoundsSaved     int64   `json:"seq_rounds_saved"`
	WindowFallbacks int64   `json:"window_fallbacks"`
}

// CompileCacheMetrics mirrors xgrammar.CompileCacheStats on the wire.
type CompileCacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Builds    int64 `json:"builds"`
	Compiles  int64 `json:"compiles"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// PrefixCacheMetrics reports the cross-request constraint-state prefix
// cache: radix-cache lookup outcomes and occupancy plus the acquisition
// layer's warm-start byte accounting. All zero when the cache is disabled.
type PrefixCacheMetrics struct {
	Enabled      bool    `json:"enabled"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	HitRate      float64 `json:"hit_rate"`
	Evictions    int64   `json:"evictions"`
	EvictedBytes int64   `json:"evicted_bytes"`
	Entries      int     `json:"entries"`
	Bytes        int64   `json:"bytes"`
	MaxBytes     int64   `json:"max_bytes"`
	// Acquisition-layer counters: sessions that joined through Acquire,
	// those warm-started from a checkpoint, exact full-prefix hits, and the
	// prefix bytes skipped versus replayed through the matcher.
	Acquires      int64 `json:"acquires"`
	WarmStarts    int64 `json:"warm_starts"`
	ExactHits     int64 `json:"exact_hits"`
	BytesReused   int64 `json:"bytes_reused"`
	BytesReplayed int64 `json:"bytes_replayed"`
}

// StoreMetrics mirrors xgrammar.StoreStats on the wire.
type StoreMetrics struct {
	Attached    bool  `json:"attached"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Quarantined int64 `json:"quarantined"`
	Preloaded   int64 `json:"preloaded"`
	Blobs       int   `json:"blobs"`
}

func (s *Server) prefixCacheMetrics() PrefixCacheMetrics {
	pc := s.eng.PrefixCacheStats()
	pa := s.eng.PrefixAcquireStats()
	return PrefixCacheMetrics{
		Enabled:       pc.MaxBytes > 0,
		Hits:          pc.Hits,
		Misses:        pc.Misses,
		HitRate:       pc.HitRate(),
		Evictions:     pc.Evictions,
		EvictedBytes:  pc.EvictedBytes,
		Entries:       pc.Entries,
		Bytes:         pc.Bytes,
		MaxBytes:      pc.MaxBytes,
		Acquires:      pa.Acquires,
		WarmStarts:    pa.WarmStarts,
		ExactHits:     pa.ExactHits,
		BytesReused:   pa.BytesReused,
		BytesReplayed: pa.BytesReplayed,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.writeProm(w)
		return
	}
	cc := s.comp.CompileCacheStats()
	st := s.comp.StoreStats()
	uptime := time.Since(s.start)
	tokens := s.b.tokens.Load()
	fills, fastFills := s.eng.FillCounters()
	p50, p99 := s.b.fillPercentiles()
	m := Metrics{
		UptimeMS:         float64(uptime.Microseconds()) / 1e3,
		Requests:         s.requests.Load(),
		Rejected:         s.rejected.Load(),
		Inflight:         s.inflight.Load(),
		Backend:          s.backends[""].Name(),
		LiveBatch:        s.b.liveNow.Load(),
		PeakBatch:        s.b.peakBatch.Load(),
		DecodeRounds:     s.b.rounds.Load(),
		TokensGenerated:  tokens,
		JumpForwardBytes: s.b.jfBytes.Load(),
		TokensPerSec:     float64(tokens) / uptime.Seconds(),
		FillP50US:        float64(p50.Nanoseconds()) / 1e3,
		FillP99US:        float64(p99.Nanoseconds()) / 1e3,
		Fills:            fills,
		FillFastPath:     fastFills,
		Speculative:      s.b.specMetrics(),
		StructuralTags:   s.b.tagMetrics(),
		CompileCache: CompileCacheMetrics{
			Hits:      cc.Hits,
			Misses:    cc.Misses,
			Coalesced: cc.Coalesced,
			Builds:    cc.Builds,
			Compiles:  cc.Compiles,
			Evictions: cc.Evictions,
			Entries:   cc.Entries,
			Bytes:     cc.Bytes,
		},
		PrefixCache: s.prefixCacheMetrics(),
		Store: StoreMetrics{
			Attached:    st.Attached,
			Hits:        st.Hits,
			Misses:      st.Misses,
			Writes:      st.Writes,
			WriteErrors: st.WriteErrors,
			Quarantined: st.Quarantined,
			Preloaded:   st.Preloaded,
			Blobs:       st.Blobs,
		},
		Backends: map[string]BackendMetrics{},
	}
	if fills > 0 {
		m.FillFastPathRate = float64(fastFills) / float64(fills)
	}
	s.bstatsMu.Lock()
	stats := make(map[string]*backendStats, len(s.bstats))
	for name, bst := range s.bstats {
		stats[name] = bst
	}
	s.bstatsMu.Unlock()
	for name, bst := range stats {
		m.Backends[name] = bst.snapshot()
	}
	writeJSON(w, http.StatusOK, m)
}

// decodeBody decodes a JSON request body under the configured size cap,
// writing the error response itself. Unbounded bodies would let a flood
// bypass bounded admission by exhausting memory before the 429 check.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return err
	}
	return nil
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
