package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"xgrammar/internal/backend"
	"xgrammar/internal/backend/httpllm"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/server"
)

// TestGatewayHTTPBackendEndToEnd serves /v1/generate through the HTTP
// model-backend adapter pointed at a loopback of the simulated sampler: the
// whole batching/dispatch path is unchanged, only the model hop crosses
// HTTP — so the output must be byte-identical to the in-process default
// backend at the same seed, and the per-backend metrics must attribute the
// request to "http".
func TestGatewayHTTPBackendEndToEnd(t *testing.T) {
	eos := testInfo(t).EOSTokenID()
	loop := httptest.NewServer(httpllm.NewLoopbackHandler(simllm.NewSampler(eos), httpllm.LoopbackOptions{}))
	defer loop.Close()

	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 8, MaxTokens: 300,
		Backends: map[string]backend.Backend{"loop": httpllm.New(httpllm.Options{BaseURL: loop.URL})},
	})

	resp, body := postJSON(t, ts.URL+"/v1/grammars", server.GrammarRequest{Kind: "json_schema", Source: testSchema})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg server.GrammarResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}

	gen := func(model string, seed int64) server.GenerateResponse {
		resp, body := postJSON(t, ts.URL+"/v1/generate", server.GenerateRequest{
			GrammarID: reg.ID, Model: model, Seed: seed,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate model=%q: %d %s", model, resp.StatusCode, body)
		}
		var r server.GenerateResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	for _, seed := range []int64{7, 42} {
		viaHTTP := gen("loop", seed)
		inProc := gen("", seed)
		if viaHTTP.Text != inProc.Text {
			t.Fatalf("seed %d: HTTP-backend output diverged from in-proc:\n http: %q\nlocal: %q", seed, viaHTTP.Text, inProc.Text)
		}
		if viaHTTP.FinishReason != server.FinishStop {
			t.Fatalf("seed %d: finish_reason = %q, want stop", seed, viaHTTP.FinishReason)
		}
		assertValidInstance(t, viaHTTP.Text)
	}

	m := getMetrics(t, ts.URL)
	if m.Backends["http"].Requests != 2 {
		t.Fatalf("http backend requests = %d, want 2", m.Backends["http"].Requests)
	}
	if m.Backends["sim"].Requests != 2 {
		t.Fatalf("sim backend requests = %d, want 2", m.Backends["sim"].Requests)
	}
	if m.Backends["http"].Errors != 0 {
		t.Fatalf("http backend errors = %d, want 0", m.Backends["http"].Errors)
	}
	if m.Backends["http"].Tokens == 0 {
		t.Fatal("http backend generated-token counter stayed zero")
	}
	if m.Backend != "sim" {
		t.Fatalf("default backend label = %q, want sim", m.Backend)
	}
}

// TestGatewayUnknownModel pins the 404 on unmapped model names.
func TestGatewayUnknownModel(t *testing.T) {
	ts, _, _ := gateway(t, "", false, server.Config{MaxInflight: 4, MaxTokens: 50})
	resp, body := postJSON(t, ts.URL+"/v1/generate", server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "builtin", Source: "json"},
		Model:          "no-such-model",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, body)
	}
}

// failingBackend opens sequences that error after two tokens, driving the
// gateway's FinishError path and per-backend error counter.
type failingBackend struct{ inner backend.Backend }

func (f *failingBackend) Name() string           { return "flaky" }
func (f *failingBackend) Timing() backend.Timing { return f.inner.Timing() }
func (f *failingBackend) Close() error           { return f.inner.Close() }
func (f *failingBackend) Open(req backend.Request) (backend.Sequence, error) {
	seq, err := f.inner.Open(req)
	if err != nil {
		return nil, err
	}
	return &failAfterSeq{Sequence: seq, n: 2}, nil
}

type failAfterSeq struct {
	backend.Sequence
	n int
}

var errBackendDown = errors.New("backend down")

func (s *failAfterSeq) Next(ctx context.Context, mask []uint64) (int32, error) {
	if s.n <= 0 {
		return 0, errBackendDown
	}
	s.n--
	return s.Sequence.Next(ctx, mask)
}

// TestGatewayBackendFailure pins the gateway's model-fault taxonomy: a
// backend dying mid-generation finishes that generation with
// finish_reason "error", streams the partial output, counts one backend
// error — and the decode loop keeps serving.
func TestGatewayBackendFailure(t *testing.T) {
	eos := testInfo(t).EOSTokenID()
	ts, _, _ := gateway(t, "", false, server.Config{
		MaxInflight: 4, MaxTokens: 50,
		Backends: map[string]backend.Backend{"flaky": &failingBackend{inner: simllm.NewSampler(eos)}},
	})

	resp, body := postJSON(t, ts.URL+"/v1/generate", server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "builtin", Source: "json"},
		Model:          "flaky", Seed: 11,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	var r server.GenerateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.FinishReason != server.FinishError {
		t.Fatalf("finish_reason = %q, want error", r.FinishReason)
	}
	if r.Tokens == 0 {
		t.Fatal("partial output before the fault was not streamed")
	}

	// The batch must still serve healthy generations afterwards.
	resp, body = postJSON(t, ts.URL+"/v1/generate", server.GenerateRequest{
		GrammarRequest: server.GrammarRequest{Kind: "builtin", Source: "json"}, Seed: 11,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault generate: %d %s", resp.StatusCode, body)
	}

	m := getMetrics(t, ts.URL)
	if m.Backends["flaky"].Errors != 1 {
		t.Fatalf("flaky backend errors = %d, want 1", m.Backends["flaky"].Errors)
	}
}
