package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"xgrammar/internal/obs"
)

// DebugRequestsResponse is the GET /debug/requests payload: lifetime trace
// counters plus the ring of recently completed traces, newest first.
type DebugRequestsResponse struct {
	// Started/Finished count traces minted and sealed since boot; Slow
	// counts finished requests whose total exceeded the slow threshold.
	Started  int64 `json:"started"`
	Finished int64 `json:"finished"`
	Slow     int64 `json:"slow"`
	// Traces holds the retained completed-request snapshots after
	// filtering, newest first.
	Traces []*obs.Snapshot `json:"traces"`
}

// handleDebugRequests serves the tracer's ring of recently completed
// request traces. Query parameters: model and grammar_id filter exactly,
// min_ms keeps only requests at least that slow, limit caps the count
// (newest first).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if !s.tracer.Enabled() {
		httpError(w, http.StatusNotFound, "request tracing is disabled")
		return
	}
	qp := r.URL.Query()
	f := obs.Filter{
		Model:     qp.Get("model"),
		GrammarID: qp.Get("grammar_id"),
	}
	if v := qp.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "min_ms: want a non-negative number, got %q", v)
			return
		}
		f.MinTotal = time.Duration(ms * float64(time.Millisecond))
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit: want a positive integer, got %q", v)
			return
		}
		f.Limit = n
	}
	started, finished := s.tracer.Counts()
	writeJSON(w, http.StatusOK, DebugRequestsResponse{
		Started:  started,
		Finished: finished,
		Slow:     s.tracer.SlowCount(),
		Traces:   s.tracer.Completed(f),
	})
}

// AccessRecord is one /v1/generate outcome as handed to Config.AccessLog —
// completions and error responses alike get exactly one record.
type AccessRecord struct {
	// ID is the trace ID (the X-Request-Id response header); zero when
	// tracing is disabled.
	ID               uint64  `json:"id,omitempty"`
	Model            string  `json:"model,omitempty"`
	GrammarID        string  `json:"grammar_id,omitempty"`
	FinishReason     string  `json:"finish_reason"`
	Tokens           int     `json:"tokens"`
	JumpForwardBytes int     `json:"jump_forward_bytes,omitempty"`
	TotalMS          float64 `json:"total_ms"`
	// StageMS sums per-stage span time (milliseconds, keyed by stage
	// name); empty when tracing is disabled.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
}

// logAccess emits one access record for a finished /v1/generate request.
// snap is nil when tracing is disabled (stage detail is then absent); q is
// nil when the request failed before a sequence was built.
func (s *Server) logAccess(model, grammarID, reason string, q *genSeq, start time.Time, snap *obs.Snapshot) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := AccessRecord{
		Model:        model,
		GrammarID:    grammarID,
		FinishReason: reason,
		TotalMS:      float64(time.Since(start).Microseconds()) / 1e3,
	}
	if q != nil {
		rec.Tokens = q.tokens
		rec.JumpForwardBytes = q.jfBytes
	}
	if snap != nil {
		rec.ID = snap.ID
		rec.TotalMS = snap.TotalMS
		rec.StageMS = make(map[string]float64, len(snap.Stages))
		for _, st := range snap.Stages {
			rec.StageMS[st.Stage] = st.TotalMS
		}
	}
	s.cfg.AccessLog(rec)
}

// JSONAccessLogger returns an AccessLog sink writing one JSON line per
// record to w. Safe for concurrent use.
func JSONAccessLogger(w io.Writer) func(AccessRecord) {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(rec AccessRecord) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(rec)
	}
}

// TextAccessLogger returns an AccessLog sink writing one human-readable
// line per record to w. Safe for concurrent use.
func TextAccessLogger(w io.Writer) func(AccessRecord) {
	var mu sync.Mutex
	return func(rec AccessRecord) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "req id=%d model=%q grammar=%s finish=%s tokens=%d jf_bytes=%d total_ms=%.3f\n",
			rec.ID, rec.Model, rec.GrammarID, rec.FinishReason, rec.Tokens, rec.JumpForwardBytes, rec.TotalMS)
	}
}
