// Package pda compiles a context-free grammar into the pushdown-automaton
// variant defined in Appendix A of the XGrammar paper: one byte-level FSA
// per grammar rule, where edges either consume a byte range or reference
// another rule. Matching pushes the edge's return node when entering a rule
// and pops it when the rule's automaton reaches a final node.
//
// Compile options toggle the §3.4 structure optimizations (rule inlining and
// node merging) individually so the Table 3 ablation can measure each.
package pda

import (
	"fmt"

	"xgrammar/internal/fsa"
	"xgrammar/internal/grammar"
)

// Options selects the structure optimizations applied during compilation.
type Options struct {
	// RuleInlining inlines small leaf rules into their parents (§3.4).
	RuleInlining bool
	// NodeMerging merges equivalent sibling nodes and removes
	// nondeterministic duplicate edges (§3.4).
	NodeMerging bool
	// Inline bounds the inliner; zero values mean defaults.
	Inline grammar.InlineOptions
}

// AllOptimizations enables every structure optimization.
var AllOptimizations = Options{RuleInlining: true, NodeMerging: true}

// Edge is a PDA transition. Kind is fsa.EdgeByte or fsa.EdgeRule (epsilon
// edges are eliminated at compile time); To is a global node id.
type Edge = fsa.Edge

// Node is a PDA state. Final nodes complete the owning rule, returning to
// the parent rule by popping the stack.
type Node struct {
	Edges []Edge
	Final bool
	// Rule is the index of the owning grammar rule.
	Rule int32
}

// PDA is the compiled pushdown automaton.
type PDA struct {
	// Grammar is the (possibly inlined) grammar the PDA was compiled from.
	Grammar *grammar.Grammar
	// Nodes holds all states of all rule automata under global numbering.
	Nodes []Node
	// RuleStart[r] is the global id of rule r's start node.
	RuleStart []int32
	// Root is the index of the root rule.
	Root int32
}

// Compile builds a PDA from g with the given options. The grammar must
// already validate.
func Compile(g *grammar.Grammar, opts Options) (*PDA, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.RuleInlining {
		g = grammar.Inline(g, opts.Inline)
	} else {
		g = g.Clone()
	}
	p := &PDA{Grammar: g, Root: int32(g.Root), RuleStart: make([]int32, len(g.Rules))}
	for ri, rule := range g.Rules {
		f, err := fsa.BuildRule(rule.Body)
		if err != nil {
			return nil, fmt.Errorf("pda: rule %q: %w", rule.Name, err)
		}
		f = fsa.RemoveEpsilon(f)
		if opts.NodeMerging {
			f = fsa.MergeSiblings(f)
		}
		f.SortEdges()
		off := int32(len(p.Nodes))
		p.RuleStart[ri] = off + f.Start
		for _, n := range f.Nodes {
			edges := make([]Edge, len(n.Edges))
			for i, e := range n.Edges {
				e.To += off
				edges[i] = e
			}
			p.Nodes = append(p.Nodes, Node{Edges: edges, Final: n.Final, Rule: int32(ri)})
		}
	}
	return p, nil
}

// NumNodes returns the number of PDA states.
func (p *PDA) NumNodes() int { return len(p.Nodes) }

// NumEdges returns the total number of transitions.
func (p *PDA) NumEdges() int {
	n := 0
	for i := range p.Nodes {
		n += len(p.Nodes[i].Edges)
	}
	return n
}

// HasOutEdges reports whether node n has any transitions.
func (p *PDA) HasOutEdges(n int32) bool { return len(p.Nodes[n].Edges) > 0 }

// ExpandedSuffix extracts the expanded-suffix automaton A_ctx for rule r
// (Algorithm 2, §3.2): the set of byte strings that may follow a completed
// instance of rule r in any parent context. It is extracted from the
// byte-only subgraphs of the referencing rules reachable from each
// reference's return node. A final state of the result means "anything may
// follow from here" (the search hit a rule-reference edge, which the
// algorithm conservatively does not track into). When the referencing
// rule's own automaton completes, the search continues — recursively — into
// that rule's expanded suffix, so a parent that finishes immediately does
// not degrade the filter to accept-all.
//
// The result is an epsilon-free, rule-free FSA. If rule r is never
// referenced, the automaton is empty (start node, no edges, not final):
// nothing may follow r, so every overflow suffix is refuted.
func (p *PDA) ExpandedSuffix(r int32) *fsa.FSA {
	return p.FollowAutomata()[r]
}

// FollowAutomata builds the expanded-suffix automaton of every rule in one
// pass. The per-rule automata are views of a single global graph: rule R's
// entry has an epsilon edge to the extracted subgraph of every edge
// referencing R, and a subgraph node that is final in its owning rule gains
// an epsilon edge to that rule's entry (completing the parent continues in
// the grandparent's context).
func (p *PDA) FollowAutomata() []*fsa.FSA {
	g := fsa.New() // node 0 is a scratch start; real entries follow
	entry := make([]int32, len(p.RuleStart))
	for r := range entry {
		entry[r] = g.AddNode()
	}
	// copyNode maps (owning rule, global PDA node) to its copy. The owning
	// rule matters only for the epsilon-to-entry target, which is a property
	// of the node itself (p.Nodes[n].Rule), so the PDA node id suffices.
	copyNode := map[int32]int32{}
	var build func(pn int32) int32
	build = func(pn int32) int32 {
		if id, ok := copyNode[pn]; ok {
			return id
		}
		id := g.AddNode()
		copyNode[pn] = id
		node := &p.Nodes[pn]
		ruleRef := false
		for _, e := range node.Edges {
			if e.Kind == fsa.EdgeRule {
				ruleRef = true
				break
			}
		}
		if ruleRef {
			// Conservative stop: anything may follow via the referenced rule.
			g.Nodes[id].Final = true
			return id
		}
		if node.Final {
			// The owning rule completes here; continue in its own context.
			g.AddEpsEdge(id, entry[node.Rule])
		}
		for _, e := range node.Edges {
			to := build(e.To)
			g.AddByteEdge(id, e.Lo, e.Hi, to)
		}
		return id
	}
	for ni := range p.Nodes {
		for _, e := range p.Nodes[ni].Edges {
			if e.Kind == fsa.EdgeRule {
				g.AddEpsEdge(entry[e.Rule], build(e.To))
			}
		}
	}
	out := make([]*fsa.FSA, len(entry))
	for r := range entry {
		view := g.Clone()
		view.Start = entry[r]
		out[r] = fsa.RemoveEpsilon(view)
	}
	return out
}

// Stats summarizes PDA structure for the experiment reports.
type Stats struct {
	Rules     int
	Nodes     int
	Edges     int
	RuleEdges int
	FinalNode int
}

// ComputeStats returns structural statistics.
func (p *PDA) ComputeStats() Stats {
	s := Stats{Rules: len(p.RuleStart), Nodes: len(p.Nodes)}
	for i := range p.Nodes {
		s.Edges += len(p.Nodes[i].Edges)
		if p.Nodes[i].Final {
			s.FinalNode++
		}
		for _, e := range p.Nodes[i].Edges {
			if e.Kind == fsa.EdgeRule {
				s.RuleEdges++
			}
		}
	}
	return s
}

// FromParts reconstructs a PDA from serialized components. grammarText is
// re-parsed only for display and follow-automata extraction; nodes and
// ruleStart are trusted as-is.
func FromParts(g *grammar.Grammar, nodes []Node, ruleStart []int32, root int32) *PDA {
	return &PDA{Grammar: g, Nodes: nodes, RuleStart: ruleStart, Root: root}
}
