package pda

import (
	"testing"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/fsa"
)

const arrGrammar = `
main  ::= array | str
array ::= "[" ( ( str | array ) "," )* ( str | array ) "]"
str   ::= "\"" [^"\\]* "\""
`

func compile(t *testing.T, src string, opts Options) *PDA {
	t.Helper()
	g, err := ebnf.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileBasics(t *testing.T) {
	p := compile(t, arrGrammar, Options{})
	if len(p.RuleStart) != 3 {
		t.Fatalf("rules = %d", len(p.RuleStart))
	}
	if p.Grammar.Rules[p.Root].Name != "main" {
		t.Fatalf("root = %q", p.Grammar.Rules[p.Root].Name)
	}
	st := p.ComputeStats()
	if st.Nodes == 0 || st.Edges == 0 || st.RuleEdges == 0 || st.FinalNode == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	// Every node's rule tag must be consistent with RuleStart layout.
	for i, n := range p.Nodes {
		if n.Rule < 0 || int(n.Rule) >= len(p.RuleStart) {
			t.Fatalf("node %d has bad rule %d", i, n.Rule)
		}
	}
	// No epsilon edges survive compilation.
	for i, n := range p.Nodes {
		for _, e := range n.Edges {
			if e.Kind == fsa.EdgeEps {
				t.Fatalf("node %d has epsilon edge", i)
			}
		}
	}
}

func TestNodeMergingShrinks(t *testing.T) {
	plain := compile(t, arrGrammar, Options{})
	merged := compile(t, arrGrammar, Options{NodeMerging: true})
	if merged.NumNodes() > plain.NumNodes() {
		t.Fatalf("merging grew the automaton: %d -> %d", plain.NumNodes(), merged.NumNodes())
	}
}

func TestInliningRemovesFragmentRules(t *testing.T) {
	src := `
root ::= pair ("," pair)*
pair ::= key "=" key
key  ::= [a-z]
`
	plain := compile(t, src, Options{})
	inl := compile(t, src, Options{RuleInlining: true})
	if len(inl.RuleStart) >= len(plain.RuleStart) {
		t.Fatalf("inlining kept %d rules (plain %d)", len(inl.RuleStart), len(plain.RuleStart))
	}
}

func TestCompileRejectsInvalidGrammar(t *testing.T) {
	g, err := ebnf.Parse(`root ::= "x"`)
	if err != nil {
		t.Fatal(err)
	}
	g.Root = 7 // corrupt
	if _, err := Compile(g, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestExpandedSuffix(t *testing.T) {
	// After str completes inside an array, the continuation is "," or "]".
	p := compile(t, arrGrammar, Options{RuleInlining: true, NodeMerging: true})
	strIdx := int32(p.Grammar.RuleIndex("str"))
	if strIdx < 0 {
		t.Skip("str was fully inlined")
	}
	ctx := p.ExpandedSuffix(strIdx)
	run := func(s string) (alive, sawFinal bool) {
		r := fsa.NewRunner(ctx)
		for i := 0; i < len(s); i++ {
			if !r.Step(s[i]) {
				return false, r.SawFinal()
			}
		}
		return true, r.SawFinal()
	}
	for _, good := range []string{",", "]"} {
		alive, saw := run(good)
		if !alive && !saw {
			t.Errorf("suffix %q refuted, should be allowed", good)
		}
	}
	// A letter can never follow a completed str in this grammar.
	alive, saw := run("a")
	if alive || saw {
		t.Errorf("suffix \"a\" not refuted (alive=%v sawFinal=%v)", alive, saw)
	}
}

func TestExpandedSuffixUnreferencedRule(t *testing.T) {
	p := compile(t, arrGrammar, Options{})
	ctx := p.ExpandedSuffix(p.Root) // main is never referenced
	if len(ctx.Nodes) != 1 || ctx.Nodes[0].Final {
		t.Fatalf("expected empty context automaton, got %d nodes", len(ctx.Nodes))
	}
}

func TestExpandedSuffixIsByteOnly(t *testing.T) {
	p := compile(t, arrGrammar, Options{})
	for r := range p.RuleStart {
		ctx := p.ExpandedSuffix(int32(r))
		if ctx.HasRuleEdges() || ctx.HasEpsEdges() {
			t.Fatalf("rule %d context automaton not byte-only", r)
		}
	}
}
