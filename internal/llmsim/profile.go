// Package llmsim simulates the LLM inference side of the end-to-end
// experiments (§4.2, Appendix B/C). The paper runs Llama-3.1-8B and other
// models on H100/RTX-4090 GPUs and Apple devices; here a latency profile
// models the GPU/accelerator time per decode step as a function of batch
// size, while grammar CPU time is actually measured. The "model" itself is
// a teacher-forced generator with a configurable noise process, so the
// Table 4 accuracy experiment (prose wrappers, type errors) is reproducible.
package llmsim

import "time"

// Profile models the latency characteristics of one (model, hardware) pair.
// Values are calibrated so the unconstrained baselines land near the
// paper's reported numbers (e.g. ~6ms TPOT for Llama-3.1-8B on H100 at
// batch 1, Table 2).
type Profile struct {
	Name string
	// DecodeBase is the GPU time of a batch-1 decode step.
	DecodeBase time.Duration
	// DecodePerSeq is the marginal GPU time per extra sequence in a batch.
	DecodePerSeq time.Duration
	// PrefillPerToken is the prompt-processing time per token.
	PrefillPerToken time.Duration
	// SamplePerStep is the sampling cost per step (after the sync point).
	SamplePerStep time.Duration
}

// DecodeStep returns the modelled GPU time for one decode step at the given
// batch size.
func (p Profile) DecodeStep(batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	return p.DecodeBase + time.Duration(batch-1)*p.DecodePerSeq
}

// Prefill returns the modelled prompt-processing time.
func (p Profile) Prefill(promptTokens int) time.Duration {
	return time.Duration(promptTokens) * p.PrefillPerToken
}

// SampleStep returns the modelled per-step sampling cost. Together with
// DecodeStep, Prefill, and SpecStep it makes Profile satisfy the model
// backend's Timing interface.
func (p Profile) SampleStep() time.Duration { return p.SamplePerStep }

// SpecStep returns the modelled GPU time for one speculative draft-verify
// decode round at the given batch size and draft-window length: the draft
// model (modelled ~8x smaller than the target) proposes window tokens
// serially, then the target verifies window+1 positions per sequence in one
// forward pass — a decode step whose extra positions are processed at
// prefill-like marginal cost. With window == 0 this degrades to DecodeStep.
func (p Profile) SpecStep(batch, window int) time.Duration {
	if window < 0 {
		window = 0
	}
	draft := time.Duration(window) * (p.DecodeBase / 8)
	verify := p.DecodeStep(batch) + time.Duration(window)*p.PrefillPerToken
	return draft + verify
}

// H100Llama8B models Llama-3.1-8B-Instruct on an NVIDIA H100 (the §4.2
// serving host): ~6ms at batch 1, ~9ms at 16, ~12ms at 32.
func H100Llama8B() Profile {
	return Profile{
		Name:            "Llama-3.1-8B/H100",
		DecodeBase:      6 * time.Millisecond,
		DecodePerSeq:    190 * time.Microsecond,
		PrefillPerToken: 80 * time.Microsecond,
		SamplePerStep:   100 * time.Microsecond,
	}
}

// RTX4090Llama8B models Llama-3.1-8B on an RTX 4090 (the §4.1/Appendix B
// host): ~6.5ms TPOT at batch 1.
func RTX4090Llama8B() Profile {
	return Profile{
		Name:            "Llama-3.1-8B/RTX4090",
		DecodeBase:      6500 * time.Microsecond,
		DecodePerSeq:    260 * time.Microsecond,
		PrefillPerToken: 120 * time.Microsecond,
		SamplePerStep:   100 * time.Microsecond,
	}
}

// DeepSeekV2Lite models DeepSeek-V2-Lite (16B MoE) on an H100 (Table 1):
// faster per-step than the dense 8B.
func DeepSeekV2Lite() Profile {
	return Profile{
		Name:            "DeepSeek-V2-Lite-16B-MoE/H100",
		DecodeBase:      4500 * time.Microsecond,
		DecodePerSeq:    170 * time.Microsecond,
		PrefillPerToken: 90 * time.Microsecond,
		SamplePerStep:   100 * time.Microsecond,
	}
}

// M3MaxLlama8B models 4-bit Llama-3.1-8B in-browser on a MacBook Pro M3 Max
// (Figure 12): ~29.7ms TPOT, TTFT ~1365ms unstructured.
func M3MaxLlama8B() Profile {
	return Profile{
		Name:            "Llama-3.1-8B-q4/M3-Max-WebGPU",
		DecodeBase:      29500 * time.Microsecond,
		DecodePerSeq:    2 * time.Millisecond,
		PrefillPerToken: 9800 * time.Microsecond,
		SamplePerStep:   200 * time.Microsecond,
	}
}

// IPhoneQwen05B models 4-bit Qwen-2.5-0.5B on an iPhone 14 Pro Max
// (Figure 12): ~47.3ms TPOT, TTFT ~955ms unstructured.
func IPhoneQwen05B() Profile {
	return Profile{
		Name:            "Qwen-2.5-0.5B-q4/iPhone-14-Pro-Max",
		DecodeBase:      47 * time.Millisecond,
		DecodePerSeq:    4 * time.Millisecond,
		PrefillPerToken: 6800 * time.Microsecond,
		SamplePerStep:   300 * time.Microsecond,
	}
}
