package llmsim

import (
	"math/rand"
	"regexp"
	"strings"

	"xgrammar/internal/backend"
)

// NoiseOptions parameterizes the unconstrained model's failure modes on
// structured tasks (Table 4): wrapping the payload in explanatory prose and
// emitting values with the wrong type. Probabilities are per request.
type NoiseOptions struct {
	// ProseProb wraps the output in natural-language explanation.
	ProseProb float64
	// TypeErrProb corrupts one JSON value's type (or, for XML, breaks a
	// closing tag).
	TypeErrProb float64
}

// FunctionCallingNoise reproduces the paper's 62% unconstrained accuracy on
// function calling: 1 - (1-0.28)(1-0.14) ≈ 0.38 failure rate.
func FunctionCallingNoise() NoiseOptions {
	return NoiseOptions{ProseProb: 0.28, TypeErrProb: 0.14}
}

// XMLGenerationNoise reproduces the ~80% unconstrained accuracy on XML code
// generation.
func XMLGenerationNoise() NoiseOptions {
	return NoiseOptions{ProseProb: 0.15, TypeErrProb: 0.06}
}

var prosePrefixes = []string{
	"Sure! Here is the output you requested: ",
	"The answer is as follows. ",
	"Here's the structured result:\n",
	"Certainly, see below. ",
}

var proseSuffixes = []string{
	" Let me know if you need anything else!",
	" I hope this helps.",
	"\nThat completes the request.",
	"",
}

var numberValue = regexp.MustCompile(`: (-?[0-9][0-9.eE+-]*)`)

// MakeNoisy renders the unconstrained model's output for a clean target:
// with ProseProb the payload is wrapped in prose, and with TypeErrProb a
// value type is corrupted. The returned bool reports whether the output was
// corrupted (i.e. would fail syntactic validation of the pure payload).
func MakeNoisy(clean string, opts NoiseOptions, rng *rand.Rand) (string, bool) {
	out := clean
	corrupted := false
	if rng.Float64() < opts.TypeErrProb {
		if loc := numberValue.FindStringSubmatchIndex(out); loc != nil {
			// Replace a numeric value with a bareword — the "unexpected
			// type" failure the paper describes.
			out = out[:loc[2]] + "approximately " + out[loc[2]:loc[3]] + out[loc[3]:]
			corrupted = true
		} else if i := strings.LastIndexByte(out, '<'); i > 0 {
			// XML: drop the final closing tag.
			out = out[:i]
			corrupted = true
		}
	}
	if rng.Float64() < opts.ProseProb {
		out = prosePrefixes[rng.Intn(len(prosePrefixes))] + out + proseSuffixes[rng.Intn(len(proseSuffixes))]
		corrupted = true
	}
	return out, corrupted
}

// Request is one serving request: a prompt length and the clean target the
// teacher-forced model intends to produce. It now lives in the model-backend
// package (the type is shared by every backend implementation); the alias
// keeps llmsim-facing code reading naturally.
type Request = backend.Request

// NewRequests builds requests from target strings with the paper's average
// prompt length (139 tokens, §4.2).
func NewRequests(targets []string, promptTokens int) []*Request {
	return backend.NewRequests(targets, promptTokens)
}
