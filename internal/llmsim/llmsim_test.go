package llmsim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestDecodeStepScalesWithBatch(t *testing.T) {
	p := H100Llama8B()
	if p.DecodeStep(1) >= p.DecodeStep(16) || p.DecodeStep(16) >= p.DecodeStep(32) {
		t.Fatal("decode step does not grow with batch")
	}
	if p.DecodeStep(0) != p.DecodeStep(1) {
		t.Fatal("batch 0 not clamped")
	}
}

func TestProfilesCalibration(t *testing.T) {
	// Batch-1 decode steps should land near the paper's unconstrained TPOT.
	cases := []struct {
		p    Profile
		want time.Duration
		tol  time.Duration
	}{
		{H100Llama8B(), 6200 * time.Microsecond, 2 * time.Millisecond},
		{DeepSeekV2Lite(), 4600 * time.Microsecond, 2 * time.Millisecond},
		{M3MaxLlama8B(), 29700 * time.Microsecond, 5 * time.Millisecond},
		{IPhoneQwen05B(), 47300 * time.Microsecond, 8 * time.Millisecond},
	}
	for _, c := range cases {
		got := c.p.DecodeStep(1) + c.p.SamplePerStep
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("%s: step %v, want %v ± %v", c.p.Name, got, c.want, c.tol)
		}
	}
}

func TestPrefill(t *testing.T) {
	p := H100Llama8B()
	if p.Prefill(100) != 100*p.PrefillPerToken {
		t.Fatal("prefill math wrong")
	}
}

func TestMakeNoisyProse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clean := `{"a": 1}`
	noisy, corrupted := MakeNoisy(clean, NoiseOptions{ProseProb: 1}, rng)
	if !corrupted || !strings.Contains(noisy, clean) || noisy == clean {
		t.Fatalf("prose noise wrong: %q", noisy)
	}
}

func TestMakeNoisyTypeError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	clean := `{"a": 42}`
	noisy, corrupted := MakeNoisy(clean, NoiseOptions{TypeErrProb: 1}, rng)
	if !corrupted {
		t.Fatal("type error did not corrupt")
	}
	if !strings.Contains(noisy, "approximately") {
		t.Fatalf("expected bareword corruption: %q", noisy)
	}
}

func TestMakeNoisyXMLTagDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clean := `<a><b>x</b></a>`
	noisy, corrupted := MakeNoisy(clean, NoiseOptions{TypeErrProb: 1}, rng)
	if !corrupted || strings.HasSuffix(noisy, "</a>") {
		t.Fatalf("xml corruption wrong: %q", noisy)
	}
}

func TestMakeNoisyCleanPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clean := `{"a": 1}`
	noisy, corrupted := MakeNoisy(clean, NoiseOptions{}, rng)
	if corrupted || noisy != clean {
		t.Fatalf("zero-noise changed output: %q", noisy)
	}
}

func TestNoiseRatesApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := FunctionCallingNoise()
	n, bad := 2000, 0
	for i := 0; i < n; i++ {
		_, corrupted := MakeNoisy(`{"x": 123}`, opts, rng)
		if corrupted {
			bad++
		}
	}
	rate := float64(bad) / float64(n)
	// Expected failure ≈ 1-(1-0.28)(1-0.14) ≈ 0.38 (paper: 38%).
	if rate < 0.30 || rate > 0.46 {
		t.Fatalf("failure rate %.3f outside expected band", rate)
	}
}

func TestNewRequests(t *testing.T) {
	reqs := NewRequests([]string{"a", "bb"}, 139)
	if len(reqs) != 2 || reqs[0].PromptTokens != 139 || reqs[1].Target != "bb" {
		t.Fatal("NewRequests wrong")
	}
	if reqs[0].String() == "" {
		t.Fatal("empty String()")
	}
}
