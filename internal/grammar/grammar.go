// Package grammar defines the intermediate representation for context-free
// grammars used by the engine, along with structural analyses (nullability,
// left-recursion detection) and the rule-inlining optimization from §3.4 of
// the XGrammar paper.
//
// A Grammar is a list of named rules; each rule body is an expression tree
// over sequences, choices, literals, character classes, repetitions, and
// references to other rules. Character classes are specified over runes and
// lowered to byte-level automata by package fsa.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Grammar is a context-free grammar. Rules[Root] is the entry rule.
type Grammar struct {
	Rules []Rule
	Root  int
}

// Rule is a single named production.
type Rule struct {
	Name string
	Body Expr
}

// Expr is a grammar expression node.
type Expr interface {
	isExpr()
	// String renders the expression in EBNF-ish syntax for debugging.
	String() string
}

// Seq matches its items in order.
type Seq struct{ Items []Expr }

// Choice matches any one of its alternatives.
type Choice struct{ Alts []Expr }

// Literal matches an exact byte string.
type Literal struct{ Bytes []byte }

// RuneRange is an inclusive range of Unicode code points.
type RuneRange struct{ Lo, Hi rune }

// CharClass matches a single rune inside (or, if Negated, outside) Ranges.
// A negated class never matches beyond the valid Unicode range.
type CharClass struct {
	Ranges  []RuneRange
	Negated bool
}

// RuleRef is a reference to another rule by index.
type RuleRef struct {
	Index int
	Name  string
}

// Repeat matches Sub between Min and Max times. Max < 0 means unbounded.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

// Empty matches the empty string.
type Empty struct{}

func (*Seq) isExpr()       {}
func (*Choice) isExpr()    {}
func (*Literal) isExpr()   {}
func (*CharClass) isExpr() {}
func (*RuleRef) isExpr()   {}
func (*Repeat) isExpr()    {}
func (*Empty) isExpr()     {}

func (e *Seq) String() string {
	if len(e.Items) == 0 {
		return `""`
	}
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		s := it.String()
		if _, ok := it.(*Choice); ok {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}

func (e *Choice) String() string {
	parts := make([]string, len(e.Alts))
	for i, a := range e.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " | ")
}

func (e *Literal) String() string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, b := range e.Bytes {
		switch b {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if b < 0x20 || b >= 0x7f {
				fmt.Fprintf(&sb, `\x%02x`, b)
			} else {
				sb.WriteByte(b)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func (e *CharClass) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	if e.Negated {
		sb.WriteByte('^')
	}
	for _, r := range e.Ranges {
		writeClassRune(&sb, r.Lo)
		if r.Hi != r.Lo {
			sb.WriteByte('-')
			writeClassRune(&sb, r.Hi)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

func writeClassRune(sb *strings.Builder, r rune) {
	switch r {
	case '\\', ']', '-', '^':
		sb.WriteByte('\\')
		sb.WriteRune(r)
	case '\n':
		sb.WriteString(`\n`)
	case '\r':
		sb.WriteString(`\r`)
	case '\t':
		sb.WriteString(`\t`)
	default:
		if r < 0x20 {
			fmt.Fprintf(sb, `\x%02x`, r)
		} else {
			sb.WriteRune(r)
		}
	}
}

func (e *RuleRef) String() string { return e.Name }

func (e *Repeat) String() string {
	s := e.Sub.String()
	switch e.Sub.(type) {
	case *Choice, *Seq, *Repeat:
		s = "(" + s + ")"
	}
	switch {
	case e.Min == 0 && e.Max < 0:
		return s + "*"
	case e.Min == 1 && e.Max < 0:
		return s + "+"
	case e.Min == 0 && e.Max == 1:
		return s + "?"
	case e.Max < 0:
		return fmt.Sprintf("%s{%d,}", s, e.Min)
	case e.Min == e.Max:
		return fmt.Sprintf("%s{%d}", s, e.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", s, e.Min, e.Max)
	}
}

func (e *Empty) String() string { return `""` }

// String renders the whole grammar, root rule first.
func (g *Grammar) String() string {
	var sb strings.Builder
	order := make([]int, 0, len(g.Rules))
	order = append(order, g.Root)
	for i := range g.Rules {
		if i != g.Root {
			order = append(order, i)
		}
	}
	for _, i := range order {
		fmt.Fprintf(&sb, "%s ::= %s\n", g.Rules[i].Name, g.Rules[i].Body.String())
	}
	return sb.String()
}

// RuleIndex returns the index of the rule with the given name, or -1.
func (g *Grammar) RuleIndex(name string) int {
	for i, r := range g.Rules {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: rule references in range, repeat
// bounds sane, character class ranges ordered, and absence of left recursion.
func (g *Grammar) Validate() error {
	if len(g.Rules) == 0 {
		return fmt.Errorf("grammar: no rules")
	}
	if g.Root < 0 || g.Root >= len(g.Rules) {
		return fmt.Errorf("grammar: root index %d out of range", g.Root)
	}
	names := map[string]bool{}
	for i, r := range g.Rules {
		if r.Name == "" {
			return fmt.Errorf("grammar: rule %d has empty name", i)
		}
		if names[r.Name] {
			return fmt.Errorf("grammar: duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		if r.Body == nil {
			return fmt.Errorf("grammar: rule %q has nil body", r.Name)
		}
		if err := validateExpr(r.Body, len(g.Rules)); err != nil {
			return fmt.Errorf("grammar: rule %q: %w", r.Name, err)
		}
	}
	if cyc := g.leftRecursiveCycle(); cyc != nil {
		parts := make([]string, len(cyc))
		for i, ri := range cyc {
			parts[i] = g.Rules[ri].Name
		}
		return fmt.Errorf("grammar: left recursion through %s", strings.Join(parts, " -> "))
	}
	return nil
}

func validateExpr(e Expr, nrules int) error {
	switch v := e.(type) {
	case *Seq:
		for _, it := range v.Items {
			if err := validateExpr(it, nrules); err != nil {
				return err
			}
		}
	case *Choice:
		if len(v.Alts) == 0 {
			return fmt.Errorf("empty choice")
		}
		for _, a := range v.Alts {
			if err := validateExpr(a, nrules); err != nil {
				return err
			}
		}
	case *Literal:
		// any bytes ok, including empty
	case *CharClass:
		for _, r := range v.Ranges {
			if r.Lo > r.Hi {
				return fmt.Errorf("character class range out of order: %q > %q", r.Lo, r.Hi)
			}
			if r.Hi > 0x10FFFF {
				return fmt.Errorf("character class range beyond Unicode: %#x", r.Hi)
			}
		}
		if !v.Negated && len(v.Ranges) == 0 {
			return fmt.Errorf("empty character class matches nothing")
		}
	case *RuleRef:
		if v.Index < 0 || v.Index >= nrules {
			return fmt.Errorf("rule reference %q index %d out of range", v.Name, v.Index)
		}
	case *Repeat:
		if v.Min < 0 {
			return fmt.Errorf("repeat min %d < 0", v.Min)
		}
		if v.Max >= 0 && v.Max < v.Min {
			return fmt.Errorf("repeat max %d < min %d", v.Max, v.Min)
		}
		return validateExpr(v.Sub, nrules)
	case *Empty:
	default:
		return fmt.Errorf("unknown expression type %T", e)
	}
	return nil
}

// Nullable reports, for each rule, whether it can derive the empty string.
func (g *Grammar) Nullable() []bool {
	nullable := make([]bool, len(g.Rules))
	changed := true
	for changed {
		changed = false
		for i, r := range g.Rules {
			if !nullable[i] && exprNullable(r.Body, nullable) {
				nullable[i] = true
				changed = true
			}
		}
	}
	return nullable
}

func exprNullable(e Expr, ruleNullable []bool) bool {
	switch v := e.(type) {
	case *Seq:
		for _, it := range v.Items {
			if !exprNullable(it, ruleNullable) {
				return false
			}
		}
		return true
	case *Choice:
		for _, a := range v.Alts {
			if exprNullable(a, ruleNullable) {
				return true
			}
		}
		return false
	case *Literal:
		return len(v.Bytes) == 0
	case *CharClass:
		return false
	case *RuleRef:
		return ruleNullable[v.Index]
	case *Repeat:
		return v.Min == 0 || exprNullable(v.Sub, ruleNullable)
	case *Empty:
		return true
	}
	return false
}

// leftRecursiveCycle returns a cycle of rule indices through which the
// grammar is left-recursive, or nil. Rule R directly left-refers to S if a
// reference to S can occur before any input byte is consumed in R's body.
func (g *Grammar) leftRecursiveCycle() []int {
	nullable := g.Nullable()
	edges := make([][]int, len(g.Rules))
	for i, r := range g.Rules {
		set := map[int]bool{}
		leftRefs(r.Body, nullable, set)
		for s := range set {
			edges[i] = append(edges[i], s)
		}
		sort.Ints(edges[i])
	}
	// DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Rules))
	parent := make([]int, len(g.Rules))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range edges[u] {
			if color[v] == gray {
				// Reconstruct cycle v -> ... -> u -> v.
				cycle = []int{v}
				for x := u; x != v && x != -1; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse so it reads v -> ... -> u.
				for l, r := 0, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				cycle = append(cycle, v)
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range g.Rules {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// leftRefs adds to set every rule index that can be referenced before any
// byte of input is consumed when matching e.
func leftRefs(e Expr, nullable []bool, set map[int]bool) {
	switch v := e.(type) {
	case *Seq:
		for _, it := range v.Items {
			leftRefs(it, nullable, set)
			if !exprNullable(it, nullable) {
				return
			}
		}
	case *Choice:
		for _, a := range v.Alts {
			leftRefs(a, nullable, set)
		}
	case *RuleRef:
		set[v.Index] = true
	case *Repeat:
		if v.Max != 0 {
			leftRefs(v.Sub, nullable, set)
		}
	case *Literal, *CharClass, *Empty:
	}
}

// Reachable returns the set of rules reachable from the root.
func (g *Grammar) Reachable() []bool {
	seen := make([]bool, len(g.Rules))
	var visit func(i int)
	visit = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		walkRefs(g.Rules[i].Body, func(r *RuleRef) { visit(r.Index) })
	}
	visit(g.Root)
	return seen
}

// walkRefs calls f for every RuleRef in e.
func walkRefs(e Expr, f func(*RuleRef)) {
	switch v := e.(type) {
	case *Seq:
		for _, it := range v.Items {
			walkRefs(it, f)
		}
	case *Choice:
		for _, a := range v.Alts {
			walkRefs(a, f)
		}
	case *RuleRef:
		f(v)
	case *Repeat:
		walkRefs(v.Sub, f)
	}
}

// Clone returns a deep copy of the grammar.
func (g *Grammar) Clone() *Grammar {
	ng := &Grammar{Root: g.Root, Rules: make([]Rule, len(g.Rules))}
	for i, r := range g.Rules {
		ng.Rules[i] = Rule{Name: r.Name, Body: CloneExpr(r.Body)}
	}
	return ng
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case *Seq:
		items := make([]Expr, len(v.Items))
		for i, it := range v.Items {
			items[i] = CloneExpr(it)
		}
		return &Seq{Items: items}
	case *Choice:
		alts := make([]Expr, len(v.Alts))
		for i, a := range v.Alts {
			alts[i] = CloneExpr(a)
		}
		return &Choice{Alts: alts}
	case *Literal:
		b := make([]byte, len(v.Bytes))
		copy(b, v.Bytes)
		return &Literal{Bytes: b}
	case *CharClass:
		rs := make([]RuneRange, len(v.Ranges))
		copy(rs, v.Ranges)
		return &CharClass{Ranges: rs, Negated: v.Negated}
	case *RuleRef:
		return &RuleRef{Index: v.Index, Name: v.Name}
	case *Repeat:
		return &Repeat{Sub: CloneExpr(v.Sub), Min: v.Min, Max: v.Max}
	case *Empty:
		return &Empty{}
	}
	panic(fmt.Sprintf("grammar: unknown expr %T", e))
}

// Size returns a rough node-count of an expression, used by the inliner to
// bound growth.
func Size(e Expr) int {
	switch v := e.(type) {
	case *Seq:
		n := 1
		for _, it := range v.Items {
			n += Size(it)
		}
		return n
	case *Choice:
		n := 1
		for _, a := range v.Alts {
			n += Size(a)
		}
		return n
	case *Literal:
		return 1 + len(v.Bytes)
	case *CharClass:
		return 1 + len(v.Ranges)
	case *Repeat:
		n := Size(v.Sub)
		// Bounded repeats are unrolled by the FSA builder; account for it.
		reps := v.Min
		if v.Max > reps {
			reps = v.Max
		}
		if reps < 1 {
			reps = 1
		}
		if reps > 8 {
			reps = 8
		}
		return 1 + n*reps
	default:
		return 1
	}
}
