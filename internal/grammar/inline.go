package grammar

// InlineOptions bounds the rule-inlining optimization (§3.4 of the paper).
// A leaf rule (one that references no other rules) is inlined into its
// referencing rules when its size is at most MaxRuleSize and the referencing
// rule's body stays at or below MaxResultSize after substitution.
type InlineOptions struct {
	MaxRuleSize   int
	MaxResultSize int
}

// DefaultInlineOptions matches the constants used throughout the benchmarks.
var DefaultInlineOptions = InlineOptions{MaxRuleSize: 64, MaxResultSize: 1024}

// Inline returns a new grammar with fragment rules inlined into their
// parents. The root rule is never inlined away. Rules left unreachable by
// inlining are pruned and remaining rules renumbered.
func Inline(g *Grammar, opts InlineOptions) *Grammar {
	if opts.MaxRuleSize <= 0 {
		opts.MaxRuleSize = DefaultInlineOptions.MaxRuleSize
	}
	if opts.MaxResultSize <= 0 {
		opts.MaxResultSize = DefaultInlineOptions.MaxResultSize
	}
	ng := g.Clone()
	for {
		changed := false
		leaf := make([]bool, len(ng.Rules))
		for i, r := range ng.Rules {
			if i == ng.Root {
				continue
			}
			hasRef := false
			walkRefs(r.Body, func(*RuleRef) { hasRef = true })
			if !hasRef && Size(r.Body) <= opts.MaxRuleSize {
				leaf[i] = true
			}
		}
		for i := range ng.Rules {
			body, did := inlineInto(ng, ng.Rules[i].Body, leaf, opts.MaxResultSize)
			if did {
				ng.Rules[i].Body = body
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return prune(ng)
}

// inlineInto substitutes references to leaf rules inside e, as long as the
// total size of the resulting expression stays within maxSize. It reports
// whether any substitution happened.
func inlineInto(g *Grammar, e Expr, leaf []bool, maxSize int) (Expr, bool) {
	budget := maxSize - Size(e)
	did := false
	var rw func(Expr) Expr
	rw = func(e Expr) Expr {
		switch v := e.(type) {
		case *Seq:
			for i, it := range v.Items {
				v.Items[i] = rw(it)
			}
			return v
		case *Choice:
			for i, a := range v.Alts {
				v.Alts[i] = rw(a)
			}
			return v
		case *Repeat:
			v.Sub = rw(v.Sub)
			return v
		case *RuleRef:
			if leaf[v.Index] {
				sub := g.Rules[v.Index].Body
				grow := Size(sub) - 1
				if grow <= budget {
					budget -= grow
					did = true
					return CloneExpr(sub)
				}
			}
			return v
		default:
			return v
		}
	}
	ne := rw(e)
	return ne, did
}

// prune removes rules unreachable from the root and renumbers references.
func prune(g *Grammar) *Grammar {
	seen := g.Reachable()
	remap := make([]int, len(g.Rules))
	ng := &Grammar{}
	for i, r := range g.Rules {
		if seen[i] {
			remap[i] = len(ng.Rules)
			ng.Rules = append(ng.Rules, r)
		} else {
			remap[i] = -1
		}
	}
	ng.Root = remap[g.Root]
	for i := range ng.Rules {
		walkRefs(ng.Rules[i].Body, func(r *RuleRef) { r.Index = remap[r.Index] })
	}
	return ng
}
