package grammar

import (
	"strings"
	"testing"
)

func lit(s string) *Literal { return &Literal{Bytes: []byte(s)} }

func ref(i int, name string) *RuleRef { return &RuleRef{Index: i, Name: name} }

func TestValidateOK(t *testing.T) {
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: &Seq{Items: []Expr{lit("["), ref(1, "item"), lit("]")}}},
			{Name: "item", Body: &CharClass{Ranges: []RuneRange{{'a', 'z'}}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		g    *Grammar
		want string
	}{
		{
			"no rules",
			&Grammar{},
			"no rules",
		},
		{
			"bad root",
			&Grammar{Root: 5, Rules: []Rule{{Name: "a", Body: lit("x")}}},
			"root index",
		},
		{
			"duplicate names",
			&Grammar{Rules: []Rule{{Name: "a", Body: lit("x")}, {Name: "a", Body: lit("y")}}},
			"duplicate",
		},
		{
			"ref out of range",
			&Grammar{Rules: []Rule{{Name: "a", Body: ref(3, "ghost")}}},
			"out of range",
		},
		{
			"bad repeat",
			&Grammar{Rules: []Rule{{Name: "a", Body: &Repeat{Sub: lit("x"), Min: 3, Max: 1}}}},
			"repeat max",
		},
		{
			"bad class range",
			&Grammar{Rules: []Rule{{Name: "a", Body: &CharClass{Ranges: []RuneRange{{'z', 'a'}}}}}},
			"out of order",
		},
		{
			"empty class",
			&Grammar{Rules: []Rule{{Name: "a", Body: &CharClass{}}}},
			"matches nothing",
		},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestNullable(t *testing.T) {
	// a ::= "x" | b ; b ::= a? ; c ::= "y"
	g := &Grammar{
		Rules: []Rule{
			{Name: "a", Body: &Choice{Alts: []Expr{lit("x"), ref(1, "b")}}},
			{Name: "b", Body: &Repeat{Sub: ref(0, "a"), Min: 0, Max: 1}},
			{Name: "c", Body: lit("y")},
		},
	}
	n := g.Nullable()
	if !n[0] || !n[1] || n[2] {
		t.Fatalf("Nullable = %v, want [true true false]", n)
	}
}

func TestDirectLeftRecursionDetected(t *testing.T) {
	// expr ::= expr "+" term | term ; term ::= [0-9]
	g := &Grammar{
		Rules: []Rule{
			{Name: "expr", Body: &Choice{Alts: []Expr{
				&Seq{Items: []Expr{ref(0, "expr"), lit("+"), ref(1, "term")}},
				ref(1, "term"),
			}}},
			{Name: "term", Body: &CharClass{Ranges: []RuneRange{{'0', '9'}}}},
		},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "left recursion") {
		t.Fatalf("want left recursion error, got %v", err)
	}
}

func TestIndirectLeftRecursionThroughNullable(t *testing.T) {
	// a ::= b "x" ; b ::= c? a ... left recursion a -> b -> a because c? nullable
	g := &Grammar{
		Rules: []Rule{
			{Name: "a", Body: &Seq{Items: []Expr{ref(1, "b"), lit("x")}}},
			{Name: "b", Body: &Seq{Items: []Expr{
				&Repeat{Sub: ref(2, "c"), Min: 0, Max: 1},
				ref(0, "a"),
			}}},
			{Name: "c", Body: lit("c")},
		},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "left recursion") {
		t.Fatalf("want left recursion error, got %v", err)
	}
}

func TestRightRecursionAllowed(t *testing.T) {
	// list ::= "x" list | "x"   (right recursion is fine)
	g := &Grammar{
		Rules: []Rule{
			{Name: "list", Body: &Choice{Alts: []Expr{
				&Seq{Items: []Expr{lit("x"), ref(0, "list")}},
				lit("x"),
			}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("right recursion rejected: %v", err)
	}
}

func TestSelfRecursionGuardedByLiteral(t *testing.T) {
	// array ::= "[" array "]" | "x" — recursion after consuming a byte: OK.
	g := &Grammar{
		Rules: []Rule{
			{Name: "array", Body: &Choice{Alts: []Expr{
				&Seq{Items: []Expr{lit("["), ref(0, "array"), lit("]")}},
				lit("x"),
			}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("guarded recursion rejected: %v", err)
	}
}

func TestReachable(t *testing.T) {
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: ref(1, "a")},
			{Name: "a", Body: lit("a")},
			{Name: "dead", Body: lit("d")},
		},
	}
	r := g.Reachable()
	if !r[0] || !r[1] || r[2] {
		t.Fatalf("Reachable = %v", r)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := &Grammar{
		Rules: []Rule{
			{Name: "root", Body: &Seq{Items: []Expr{lit("ab"), ref(0, "root")}}},
		},
	}
	c := g.Clone()
	c.Rules[0].Body.(*Seq).Items[0].(*Literal).Bytes[0] = 'z'
	if g.Rules[0].Body.(*Seq).Items[0].(*Literal).Bytes[0] != 'a' {
		t.Fatal("Clone shares literal bytes")
	}
}

func TestStringRoundTripish(t *testing.T) {
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: &Choice{Alts: []Expr{
				&Seq{Items: []Expr{lit("["), &Repeat{Sub: ref(1, "ch"), Min: 0, Max: -1}, lit("]")}},
				&Empty{},
			}}},
			{Name: "ch", Body: &CharClass{Ranges: []RuneRange{{'a', 'z'}, {'0', '9'}}, Negated: false}},
		},
	}
	s := g.String()
	for _, want := range []string{"root ::=", "ch ::=", "[a-z0-9]", `"["`, "ch*"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestInlineLeafRules(t *testing.T) {
	// root ::= frag frag ; frag ::= "ab" — frag should be inlined and pruned.
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: &Seq{Items: []Expr{ref(1, "frag"), ref(1, "frag")}}},
			{Name: "frag", Body: lit("ab")},
		},
	}
	ig := Inline(g, InlineOptions{MaxRuleSize: 10, MaxResultSize: 100})
	if len(ig.Rules) != 1 {
		t.Fatalf("rules after inline = %d, want 1: %s", len(ig.Rules), ig.String())
	}
	seq := ig.Rules[0].Body.(*Seq)
	for _, it := range seq.Items {
		if _, ok := it.(*Literal); !ok {
			t.Fatalf("item %T not inlined", it)
		}
	}
}

func TestInlineRespectsSizeLimit(t *testing.T) {
	big := lit(strings.Repeat("x", 100))
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: ref(1, "big")},
			{Name: "big", Body: big},
		},
	}
	ig := Inline(g, InlineOptions{MaxRuleSize: 10, MaxResultSize: 50})
	if len(ig.Rules) != 2 {
		t.Fatalf("oversized rule was inlined: %s", ig.String())
	}
}

func TestInlineCascades(t *testing.T) {
	// c is a leaf; once inlined into b, b becomes a leaf and inlines into root.
	g := &Grammar{
		Root: 0,
		Rules: []Rule{
			{Name: "root", Body: ref(1, "b")},
			{Name: "b", Body: &Seq{Items: []Expr{lit("("), ref(2, "c"), lit(")")}}},
			{Name: "c", Body: lit("x")},
		},
	}
	ig := Inline(g, InlineOptions{MaxRuleSize: 30, MaxResultSize: 200})
	if len(ig.Rules) != 1 {
		t.Fatalf("cascade inline failed: %s", ig.String())
	}
}

func TestInlineNeverRemovesRoot(t *testing.T) {
	g := &Grammar{
		Root:  0,
		Rules: []Rule{{Name: "root", Body: lit("x")}},
	}
	ig := Inline(g, InlineOptions{})
	if len(ig.Rules) != 1 || ig.Rules[0].Name != "root" {
		t.Fatal("root rule disturbed")
	}
}

func TestSizeAccountsForRepeat(t *testing.T) {
	small := Size(lit("ab"))
	rep := Size(&Repeat{Sub: lit("ab"), Min: 5, Max: 5})
	if rep <= small {
		t.Fatalf("Size(repeat)=%d not larger than Size(lit)=%d", rep, small)
	}
}
