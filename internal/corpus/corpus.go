// Package corpus generates the deterministic synthetic training corpus for
// the byte-level BPE tokenizer. The paper evaluates with the Llama-3.1
// tokenizer, which was trained on web-scale text; we substitute a corpus
// mixing English-like prose, JSON documents, XML and code so the learned
// merges produce the same qualitative behaviour the engine cares about:
// multi-byte tokens (whole words, punctuation runs like `":` or `},`), and
// tokens that cross grammar-element boundaries.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

var englishWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their", "if",
	"will", "up", "other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has", "look",
	"two", "more", "write", "go", "see", "number", "no", "way", "could", "people",
	"my", "than", "first", "water", "been", "call", "who", "oil", "its", "now",
	"find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
	"model", "token", "value", "string", "object", "array", "number", "true",
	"false", "null", "name", "type", "data", "result", "error", "message",
	"status", "code", "user", "item", "list", "key", "text", "input", "output",
	"function", "return", "print", "range", "index", "count", "total", "price",
	"email", "address", "city", "country", "phone", "date", "year", "month",
}

var jsonKeys = []string{
	"name", "age", "email", "address", "city", "country", "id", "type",
	"value", "items", "tags", "price", "quantity", "status", "created",
	"updated", "description", "title", "author", "metadata", "config",
	"enabled", "active", "score", "rating", "phone", "zipcode", "state",
}

var xmlTags = []string{
	"item", "entry", "record", "person", "product", "order", "config",
	"node", "element", "field", "row", "data",
}

var pyIdents = []string{
	"x", "y", "i", "n", "total", "count", "result", "value", "item",
	"data", "items", "name", "acc", "idx", "flag", "out",
}

// syllables for the synthetic lexicon: BPE needs word diversity comparable
// to natural text to learn tens of thousands of merges, so beyond the fixed
// common-word list we generate a Zipf-distributed pseudo-word lexicon.
var onsets = []string{
	"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s",
	"t", "v", "w", "z", "br", "ch", "cl", "cr", "dr", "fl", "fr", "gl",
	"gr", "pl", "pr", "sc", "sh", "sk", "sl", "sm", "sn", "sp", "st", "str",
	"sw", "th", "tr", "tw", "wh",
}
var nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "ie", "oa", "oo", "ou"}
var codas = []string{"", "", "b", "ck", "d", "g", "l", "ll", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "s", "ss", "st", "t", "x"}

// lexicon builds n deterministic pseudo-words.
func lexicon(n int, rng *rand.Rand) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		var w strings.Builder
		syls := 1 + rng.Intn(3)
		for s := 0; s < syls; s++ {
			w.WriteString(onsets[rng.Intn(len(onsets))])
			w.WriteString(nuclei[rng.Intn(len(nuclei))])
			w.WriteString(codas[rng.Intn(len(codas))])
		}
		word := w.String()
		if !seen[word] {
			seen[word] = true
			out = append(out, word)
		}
	}
	return out
}

// Options controls corpus composition.
type Options struct {
	// Bytes is the approximate corpus size.
	Bytes int
	// Seed drives the deterministic generator.
	Seed int64
	// Weights for each section, normalized internally. Zero values fall
	// back to the defaults (prose 4, json 3, code 2, xml 1).
	ProseWeight, JSONWeight, CodeWeight, XMLWeight int
}

// Default returns the standard tokenizer-training corpus of about n bytes.
func Default(n int) string {
	return Generate(Options{Bytes: n, Seed: 20250612})
}

// Generate produces a deterministic mixed-domain corpus.
func Generate(opts Options) string {
	if opts.Bytes <= 0 {
		opts.Bytes = 1 << 20
	}
	if opts.ProseWeight == 0 && opts.JSONWeight == 0 && opts.CodeWeight == 0 && opts.XMLWeight == 0 {
		opts.ProseWeight, opts.JSONWeight, opts.CodeWeight, opts.XMLWeight = 4, 3, 2, 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &gen{
		rng:  rng,
		lex:  lexicon(24000, rng),
		zipf: rand.NewZipf(rng, 1.2, 4, 23999),
	}
	var sb strings.Builder
	sb.Grow(opts.Bytes + 4096)
	total := opts.ProseWeight + opts.JSONWeight + opts.CodeWeight + opts.XMLWeight
	for sb.Len() < opts.Bytes {
		r := rng.Intn(total)
		switch {
		case r < opts.ProseWeight:
			g.writeProse(&sb)
		case r < opts.ProseWeight+opts.JSONWeight:
			g.writeJSONValue(&sb, 0)
			sb.WriteByte('\n')
		case r < opts.ProseWeight+opts.JSONWeight+opts.CodeWeight:
			writeCode(&sb, rng)
		default:
			g.writeXML(&sb)
		}
	}
	return sb.String()
}

// gen carries the generator state: a seeded RNG plus a Zipf-distributed
// pseudo-word lexicon that supplies natural-language-like diversity.
type gen struct {
	rng  *rand.Rand
	lex  []string
	zipf *rand.Zipf
}

// word draws a word: usually a common English word, sometimes a lexicon word
// sampled with a Zipf distribution so frequencies look natural.
func (g *gen) word() string {
	if g.rng.Intn(3) == 0 {
		return englishWords[g.rng.Intn(len(englishWords))]
	}
	return g.lex[g.zipf.Uint64()]
}

func (g *gen) writeProse(sb *strings.Builder) {
	rng := g.rng
	n := 6 + rng.Intn(14)
	for i := 0; i < n; i++ {
		w := g.word()
		if i == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		} else {
			sb.WriteByte(' ')
		}
		sb.WriteString(w)
	}
	switch rng.Intn(4) {
	case 0:
		sb.WriteString(", ")
		sb.WriteString(g.word())
		sb.WriteString(".")
	default:
		sb.WriteString(".")
	}
	sb.WriteByte('\n')
}

// writeJSONValue appends a random JSON value at the given nesting depth.
func (g *gen) writeJSONValue(sb *strings.Builder, depth int) {
	rng := g.rng
	switch k := rng.Intn(10); {
	case depth < 3 && k < 3: // object
		sb.WriteByte('{')
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%q: ", jsonKeys[rng.Intn(len(jsonKeys))])
			g.writeJSONValue(sb, depth+1)
		}
		sb.WriteByte('}')
	case depth < 3 && k < 5: // array
		sb.WriteByte('[')
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			g.writeJSONValue(sb, depth+1)
		}
		sb.WriteByte(']')
	case k < 7: // string
		nw := 1 + rng.Intn(3)
		sb.WriteByte('"')
		for i := 0; i < nw; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(g.word())
		}
		sb.WriteByte('"')
	case k < 8: // number
		if rng.Intn(2) == 0 {
			fmt.Fprintf(sb, "%d", rng.Intn(100000))
		} else {
			fmt.Fprintf(sb, "%.2f", rng.Float64()*1000)
		}
	case k < 9:
		sb.WriteString("true")
	default:
		if rng.Intn(2) == 0 {
			sb.WriteString("false")
		} else {
			sb.WriteString("null")
		}
	}
}

func writeCode(sb *strings.Builder, rng *rand.Rand) {
	a := pyIdents[rng.Intn(len(pyIdents))]
	b := pyIdents[rng.Intn(len(pyIdents))]
	switch rng.Intn(5) {
	case 0:
		fmt.Fprintf(sb, "%s = %d\n", a, rng.Intn(1000))
	case 1:
		fmt.Fprintf(sb, "for %s in range(%d):\n%s = %s + %s\n", a, rng.Intn(100), b, b, a)
	case 2:
		fmt.Fprintf(sb, "if %s > %d:\nprint(%s)\n", a, rng.Intn(50), a)
	case 3:
		fmt.Fprintf(sb, "while %s < %d:\n%s = %s * 2\n", a, rng.Intn(100), a, a)
	default:
		fmt.Fprintf(sb, "%s = \"%s\"\n", a, englishWords[rng.Intn(len(englishWords))])
	}
}

func (g *gen) writeXML(sb *strings.Builder) {
	rng := g.rng
	tag := xmlTags[rng.Intn(len(xmlTags))]
	attr := jsonKeys[rng.Intn(len(jsonKeys))]
	fmt.Fprintf(sb, "<%s %s=\"%d\">", tag, attr, rng.Intn(1000))
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		inner := xmlTags[rng.Intn(len(xmlTags))]
		fmt.Fprintf(sb, "<%s>%s</%s>", inner, g.word(), inner)
	}
	fmt.Fprintf(sb, "</%s>\n", tag)
}
