package corpus

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Bytes: 1 << 14, Seed: 5})
	b := Generate(Options{Bytes: 1 << 14, Seed: 5})
	if a != b {
		t.Fatal("same seed produced different corpora")
	}
	c := Generate(Options{Bytes: 1 << 14, Seed: 6})
	if a == c {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateSizeAndMix(t *testing.T) {
	s := Default(1 << 15)
	if len(s) < 1<<15 {
		t.Fatalf("corpus too small: %d", len(s))
	}
	// All four domains must be present.
	for name, marker := range map[string]string{
		"json":  `": `,
		"code":  "range(",
		"xml":   "</",
		"prose": ".\n",
	} {
		if !strings.Contains(s, marker) {
			t.Errorf("domain %s missing (marker %q)", name, marker)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	s := Generate(Options{Seed: 1})
	if len(s) < 1<<20 {
		t.Fatalf("default size not applied: %d", len(s))
	}
}

func TestWeightsRespected(t *testing.T) {
	jsonOnly := Generate(Options{Bytes: 1 << 14, Seed: 2, JSONWeight: 1})
	if strings.Contains(jsonOnly, "range(") {
		t.Fatal("json-only corpus contains code")
	}
}

func TestLexiconDiversity(t *testing.T) {
	s := Generate(Options{Bytes: 1 << 16, Seed: 3, ProseWeight: 1})
	words := map[string]bool{}
	for _, w := range strings.Fields(s) {
		words[strings.Trim(w, ".,\"")] = true
	}
	if len(words) < 500 {
		t.Fatalf("only %d distinct words; lexicon too narrow for BPE", len(words))
	}
}
