// Package baselines reimplements the constrained-decoding approaches the
// paper compares against (§4.1, §5):
//
//   - llama.cpp grammars: a PDA interpreter that deep-copies stack vectors
//     on every nondeterministic branch and scans the full vocabulary at
//     every step (LlamaCpp).
//   - Outlines: regex-to-DFA token indexing with per-state caching for
//     schema tasks (RegexFSM); for CFGs, a full-vocabulary interpreted scan
//     (the lexer+parser path, approximated with the shared-prefix PDA scan).
//   - lm-format-enforcer: per-step token-trie × DFA walk with no
//     precomputation; regex-representable tasks only (CharWalk).
//   - XGrammar itself (XGBackend), for uniform benchmarking.
//
// All backends share one interface so the experiment harness can swap them.
package baselines

import (
	"fmt"

	"xgrammar/internal/bitset"
	"xgrammar/internal/grammar"
	"xgrammar/internal/tokenizer"
)

// Backend compiles one grammar for one tokenizer and creates sessions.
type Backend interface {
	// Name identifies the backend in experiment tables.
	Name() string
	// NewSession starts a fresh generation.
	NewSession() Session
}

// Session tracks one constrained generation.
type Session interface {
	// FillMask writes the allowed-token bitmask for the next step.
	FillMask(mask *bitset.Bitset)
	// Accept advances by one token (EOS terminates).
	Accept(id int32) error
	// CanTerminate reports whether EOS is currently legal.
	CanTerminate() bool
	// IsTerminated reports whether EOS was accepted.
	IsTerminated() bool
}

// WarmBackend is implemented by grammar backends whose sessions can start
// pre-advanced past a forced byte prefix (templated-workload warm start).
// replayed reports how many of the prefix's bytes were actually fed through
// the matcher — the rest were restored from cached checkpoints.
type WarmBackend interface {
	Backend
	NewWarmSession(prefix []byte) (s Session, replayed int, err error)
}

// ErrUnsupported is returned by backends that cannot handle a grammar class
// (e.g. recursion in regex-based engines).
type ErrUnsupported struct {
	Backend string
	Reason  string
}

func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("%s: unsupported grammar: %s", e.Backend, e.Reason)
}

// finishMask applies the shared stop/special token policy: special tokens
// are cleared, stop tokens set iff the grammar can complete.
func finishMask(mask *bitset.Bitset, tok *tokenizer.Tokenizer, canTerm bool) {
	for _, id := range tok.SpecialIDs() {
		mask.Clear(int(id))
	}
	if canTerm {
		for _, id := range tok.StopIDs() {
			mask.Set(int(id))
		}
	}
}

// IsRecursive reports whether the grammar is recursive (not representable by
// a finite automaton via inlining).
func IsRecursive(g *grammar.Grammar) bool {
	n := len(g.Rules)
	// Build the rule-reference graph and look for any cycle.
	adj := make([][]int, n)
	for i, r := range g.Rules {
		seen := map[int]bool{}
		walkAllRefs(r.Body, func(idx int) {
			if !seen[idx] {
				seen[idx] = true
				adj[i] = append(adj[i], idx)
			}
		})
	}
	color := make([]int, n)
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if color[v] == 1 {
				return true
			}
			if color[v] == 0 && dfs(v) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == 0 && dfs(i) {
			return true
		}
	}
	return false
}

func walkAllRefs(e grammar.Expr, f func(int)) {
	switch v := e.(type) {
	case *grammar.Seq:
		for _, it := range v.Items {
			walkAllRefs(it, f)
		}
	case *grammar.Choice:
		for _, a := range v.Alts {
			walkAllRefs(a, f)
		}
	case *grammar.Repeat:
		walkAllRefs(v.Sub, f)
	case *grammar.RuleRef:
		f(v.Index)
	}
}
