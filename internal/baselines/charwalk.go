package baselines

import (
	"fmt"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/grammar"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/trie"
)

// CharWalk is an lm-format-enforcer-style engine: regex-representable
// schemas only, and every decoding step performs a fresh character-level
// walk of the vocabulary trie against the DFA — no caching, so the per-step
// cost stays high (the Figure 9 lm-format-enforcer column).
type CharWalk struct {
	dfa  *fsa.DFA
	tok  *tokenizer.Tokenizer
	trie *trie.Trie
}

// NewCharWalk lowers a non-recursive grammar for trie-walking.
func NewCharWalk(g *grammar.Grammar, tok *tokenizer.Tokenizer) (*CharWalk, error) {
	d, err := FlattenToDFA(g, "lm-format-enforcer")
	if err != nil {
		return nil, err
	}
	tokens := make([][]byte, tok.VocabSize())
	for id := 0; id < tok.VocabSize(); id++ {
		if !tok.IsSpecial(int32(id)) {
			tokens[id] = tok.TokenBytes(int32(id))
		}
	}
	return &CharWalk{dfa: d, tok: tok, trie: trie.Build(tokens)}, nil
}

// Name implements Backend.
func (c *CharWalk) Name() string { return "lm-format-enforcer" }

// NewSession implements Backend.
func (c *CharWalk) NewSession() Session {
	return &charWalkSession{c: c, cur: c.dfa.Start}
}

type charWalkSession struct {
	c          *CharWalk
	cur        int32
	terminated bool
}

func (s *charWalkSession) FillMask(mask *bitset.Bitset) {
	mask.ClearAll()
	if s.terminated {
		return
	}
	var walk func(tn int32, ds int32)
	walk = func(tn int32, ds int32) {
		s.c.trie.Children(tn, func(b byte, child int32) {
			nd := s.c.dfa.Next(ds, b)
			if nd < 0 {
				return
			}
			if id := s.c.trie.Token(child); id >= 0 && !s.c.tok.IsSpecial(id) {
				mask.Set(int(id))
			}
			walk(child, nd)
		})
	}
	walk(s.c.trie.Root(), s.cur)
	finishMask(mask, s.c.tok, s.CanTerminate())
}

func (s *charWalkSession) CanTerminate() bool {
	return !s.terminated && s.c.dfa.Accept[s.cur]
}

func (s *charWalkSession) IsTerminated() bool { return s.terminated }

func (s *charWalkSession) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("lm-format-enforcer: already terminated")
	}
	if id == tokenizer.EosID {
		if !s.CanTerminate() {
			return fmt.Errorf("lm-format-enforcer: premature EOS")
		}
		s.terminated = true
		return nil
	}
	if s.c.tok.IsSpecial(id) {
		return fmt.Errorf("lm-format-enforcer: special token %d", id)
	}
	cur := s.cur
	for _, b := range s.c.tok.TokenBytes(id) {
		cur = s.c.dfa.Next(cur, b)
		if cur < 0 {
			return fmt.Errorf("lm-format-enforcer: token %d violates grammar", id)
		}
	}
	s.cur = cur
	return nil
}
