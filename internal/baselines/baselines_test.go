package baselines

import (
	"sync"
	"testing"

	"xgrammar/internal/bitset"
	"xgrammar/internal/builtin"
	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

func testTok(t testing.TB) *tokenizer.Tokenizer {
	t.Helper()
	return tokenizer.BuildDefault(500)
}

func compilePDA(t testing.TB, g *grammar.Grammar) *pda.PDA {
	t.Helper()
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// allBackendsFor builds every applicable backend for a grammar.
func allBackendsFor(t *testing.T, g *grammar.Grammar, tok *tokenizer.Tokenizer) []Backend {
	t.Helper()
	p := compilePDA(t, g)
	cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
	backends := []Backend{
		NewXGBackend(p, cache, tok, ""),
		NewLlamaCpp(p, tok),
		NewOutlinesCFG(p, tok),
	}
	if fsm, err := NewRegexFSM(g, tok); err == nil {
		backends = append(backends, fsm)
	}
	if cw, err := NewCharWalk(g, tok); err == nil {
		backends = append(backends, cw)
	}
	return backends
}

// replay drives a session along the token ids of a known-valid document,
// checking mask agreement across backends at every step.
func TestBackendsAgreeOnSchemaTask(t *testing.T) {
	tok := testTok(t)
	task := workload.SchemaTasks(1, 42)[0]
	g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backends := allBackendsFor(t, g, tok)
	if len(backends) != 5 {
		t.Fatalf("expected 5 backends (incl. regex ones), got %d", len(backends))
	}
	sessions := make([]Session, len(backends))
	for i, b := range backends {
		sessions[i] = b.NewSession()
	}
	ids := tok.Encode(task.Instance)
	masks := make([]*bitset.Bitset, len(backends))
	for i := range masks {
		masks[i] = bitset.New(tok.VocabSize())
	}
	for step := 0; step <= len(ids); step++ {
		for i, s := range sessions {
			s.FillMask(masks[i])
			if i > 0 && !masks[i].Equal(masks[0]) {
				for b := 0; b < tok.VocabSize(); b++ {
					if masks[i].Get(b) != masks[0].Get(b) {
						t.Errorf("step %d: token %q: %s=%v %s=%v", step,
							tok.TokenBytes(int32(b)), backends[0].Name(), masks[0].Get(b),
							backends[i].Name(), masks[i].Get(b))
						break
					}
				}
				t.Fatalf("step %d: %s mask differs from %s", step, backends[i].Name(), backends[0].Name())
			}
		}
		if step < len(ids) {
			for i, s := range sessions {
				if err := s.Accept(ids[step]); err != nil {
					t.Fatalf("%s: %v (instance %q)", backends[i].Name(), err, task.Instance)
				}
			}
		}
	}
	for i, s := range sessions {
		if !s.CanTerminate() {
			t.Fatalf("%s cannot terminate after full instance", backends[i].Name())
		}
		if err := s.Accept(tokenizer.EosID); err != nil {
			t.Fatalf("%s: EOS rejected: %v", backends[i].Name(), err)
		}
		if !s.IsTerminated() {
			t.Fatalf("%s not terminated", backends[i].Name())
		}
	}
}

func TestBackendsAgreeOnCFG(t *testing.T) {
	tok := testTok(t)
	g := builtin.JSON()
	p := compilePDA(t, g)
	cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
	backends := []Backend{
		NewXGBackend(p, cache, tok, ""),
		NewLlamaCpp(p, tok),
		NewOutlinesCFG(p, tok),
	}
	sessions := make([]Session, len(backends))
	for i, b := range backends {
		sessions[i] = b.NewSession()
	}
	doc := `{"k": [1, true, "s"]}`
	ids := tok.Encode(doc)
	masks := make([]*bitset.Bitset, len(backends))
	for i := range masks {
		masks[i] = bitset.New(tok.VocabSize())
	}
	for step := 0; step <= len(ids); step++ {
		for i, s := range sessions {
			s.FillMask(masks[i])
			if i > 0 && !masks[i].Equal(masks[0]) {
				t.Fatalf("step %d: %s mask differs", step, backends[i].Name())
			}
		}
		if step < len(ids) {
			for i, s := range sessions {
				if err := s.Accept(ids[step]); err != nil {
					t.Fatalf("%s: %v", backends[i].Name(), err)
				}
			}
		}
	}
}

func TestRegexBackendsRejectCFG(t *testing.T) {
	tok := testTok(t)
	if _, err := NewRegexFSM(builtin.JSON(), tok); err == nil {
		t.Fatal("RegexFSM accepted a recursive grammar")
	}
	if _, err := NewCharWalk(builtin.JSON(), tok); err == nil {
		t.Fatal("CharWalk accepted a recursive grammar")
	}
}

func TestIsRecursive(t *testing.T) {
	if !IsRecursive(builtin.JSON()) {
		t.Fatal("JSON grammar not detected as recursive")
	}
	flat := jsonschema.MustCompile([]byte(`{"type": "object", "properties": {"a": {"type": "integer"}}, "required": ["a"]}`), jsonschema.Options{})
	if IsRecursive(flat) {
		t.Fatal("flat schema detected as recursive")
	}
}

func TestRegexFSMPrecompute(t *testing.T) {
	tok := testTok(t)
	g := jsonschema.MustCompile([]byte(`{"type": "object", "properties": {"x": {"type": "boolean"}}, "required": ["x"]}`), jsonschema.Options{})
	fsm, err := NewRegexFSM(g, tok)
	if err != nil {
		t.Fatal(err)
	}
	n := fsm.PrecomputeAll()
	if n < 2 {
		t.Fatalf("precomputed only %d states", n)
	}
	// After precompute, a session must replay without recomputation errors.
	s := fsm.NewSession()
	for _, id := range tok.Encode(`{"x": true}`) {
		if err := s.Accept(id); err != nil {
			t.Fatal(err)
		}
	}
	if !s.CanTerminate() {
		t.Fatal("cannot terminate")
	}
}

func TestErrUnsupportedMessage(t *testing.T) {
	e := &ErrUnsupported{Backend: "b", Reason: "r"}
	if e.Error() == "" {
		t.Fatal("empty error")
	}
}

func TestLlamaCppRejectsInvalidToken(t *testing.T) {
	tok := testTok(t)
	p := compilePDA(t, builtin.JSON())
	s := NewLlamaCpp(p, tok).NewSession()
	// A letter token can't start JSON (except t/f/n).
	var bad int32 = -1
	for id := 0; id < tok.VocabSize(); id++ {
		b := tok.TokenBytes(int32(id))
		if len(b) > 0 && b[0] == 'z' && !tok.IsSpecial(int32(id)) {
			bad = int32(id)
			break
		}
	}
	if bad < 0 {
		t.Skip("no z token")
	}
	if err := s.Accept(bad); err == nil {
		t.Fatal("invalid token accepted")
	}
	if err := s.Accept(tokenizer.EosID); err == nil {
		t.Fatal("premature EOS accepted")
	}
}

// TestRegexFSMConcurrentFills drives many FSM sessions at different DFA
// states from concurrent goroutines without PrecomputeAll, so the lazy
// index (masks/next maps) is written under contention — the Overlap-mode
// batch-fill pattern of the serving engine. Run with -race.
func TestRegexFSMConcurrentFills(t *testing.T) {
	tok := testTok(t)
	task := workload.SchemaTasks(1, 11)[0]
	g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := NewRegexFSM(g, tok)
	if err != nil {
		t.Skipf("schema not regular: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fsm.NewSession()
			mask := bitset.New(tok.VocabSize())
			emitted := 0
			for !sess.IsTerminated() {
				sess.FillMask(mask)
				var next int32
				if emitted >= len(task.Instance) {
					next = tokenizer.EosID
				} else {
					next = tok.Encode(task.Instance[emitted:])[0]
				}
				if !mask.Get(int(next)) {
					t.Errorf("worker %d: target token masked out", w)
					return
				}
				if err := sess.Accept(next); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				emitted += len(tok.TokenBytes(next))
			}
		}(w)
	}
	wg.Wait()
}
