package baselines

import (
	"math/rand"
	"testing"

	"xgrammar/internal/bitset"
	"xgrammar/internal/grammar"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// randGrammar builds a random grammar. Rule references are always preceded
// by a terminal inside a sequence, so the grammar is never left-recursive.
func randGrammar(rng *rand.Rand, nRules int) *grammar.Grammar {
	g := &grammar.Grammar{}
	alphabet := []byte("abcxyz01(){}[],:\" ")
	randLit := func() grammar.Expr {
		n := 1 + rng.Intn(3)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return &grammar.Literal{Bytes: b}
	}
	randClass := func() grammar.Expr {
		lo := rune('a' + rng.Intn(20))
		hi := lo + rune(rng.Intn(6))
		return &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: lo, Hi: hi}}}
	}
	var randExpr func(depth int) grammar.Expr
	randExpr = func(depth int) grammar.Expr {
		if depth >= 3 {
			if rng.Intn(2) == 0 {
				return randLit()
			}
			return randClass()
		}
		switch rng.Intn(6) {
		case 0:
			return randLit()
		case 1:
			return randClass()
		case 2:
			items := make([]grammar.Expr, 1+rng.Intn(3))
			for i := range items {
				items[i] = randExpr(depth + 1)
			}
			return &grammar.Seq{Items: items}
		case 3:
			alts := make([]grammar.Expr, 2+rng.Intn(2))
			for i := range alts {
				alts[i] = randExpr(depth + 1)
			}
			return &grammar.Choice{Alts: alts}
		case 4:
			min := rng.Intn(2)
			max := min + rng.Intn(3)
			if rng.Intn(3) == 0 {
				max = -1
			}
			return &grammar.Repeat{Sub: randExpr(depth + 1), Min: min, Max: max}
		default:
			// Guarded rule reference: terminal first, never left-recursive.
			ref := rng.Intn(nRules)
			return &grammar.Seq{Items: []grammar.Expr{
				randLit(),
				&grammar.RuleRef{Index: ref, Name: ruleName(ref)},
			}}
		}
	}
	for i := 0; i < nRules; i++ {
		g.Rules = append(g.Rules, grammar.Rule{Name: ruleName(i), Body: randExpr(0)})
	}
	return g
}

func ruleName(i int) string { return string(rune('A' + i)) }

// sample draws a random string from the grammar's language, bounding
// recursion depth.
func sample(rng *rand.Rand, g *grammar.Grammar, out []byte, e grammar.Expr, depth int) ([]byte, bool) {
	if depth > 24 || len(out) > 200 {
		return out, false
	}
	switch v := e.(type) {
	case *grammar.Literal:
		return append(out, v.Bytes...), true
	case *grammar.CharClass:
		r := v.Ranges[rng.Intn(len(v.Ranges))]
		c := r.Lo + rune(rng.Int63n(int64(r.Hi-r.Lo+1)))
		return append(out, []byte(string(c))...), true
	case *grammar.Seq:
		ok := true
		for _, it := range v.Items {
			out, ok = sample(rng, g, out, it, depth+1)
			if !ok {
				return out, false
			}
		}
		return out, true
	case *grammar.Choice:
		return sample(rng, g, out, v.Alts[rng.Intn(len(v.Alts))], depth+1)
	case *grammar.Repeat:
		n := v.Min
		if v.Max < 0 {
			n += rng.Intn(3)
		} else if v.Max > v.Min {
			n += rng.Intn(v.Max - v.Min + 1)
		}
		ok := true
		for i := 0; i < n; i++ {
			out, ok = sample(rng, g, out, v.Sub, depth+1)
			if !ok {
				return out, false
			}
		}
		return out, true
	case *grammar.RuleRef:
		return sample(rng, g, out, g.Rules[v.Index].Body, depth+1)
	case *grammar.Empty:
		return out, true
	}
	return out, false
}

// mutate produces a corrupted variant of s.
func mutate(rng *rand.Rand, s []byte) []byte {
	out := append([]byte(nil), s...)
	if len(out) == 0 {
		return []byte{'!'}
	}
	switch rng.Intn(3) {
	case 0: // flip a byte
		out[rng.Intn(len(out))] = byte('!' + rng.Intn(60))
	case 1: // truncate (still a valid prefix — test prefix acceptance)
		out = out[:rng.Intn(len(out))]
	default: // insert
		i := rng.Intn(len(out) + 1)
		out = append(out[:i], append([]byte{byte('!' + rng.Intn(60))}, out[i:]...)...)
	}
	return out
}

// llamaAccepts runs the independent vector-stack interpreter as an oracle
// for byte-level prefix acceptance.
func llamaAccepts(l *LlamaCpp, input []byte) bool {
	s := l.NewSession().(*llamaSession)
	return s.matchToken(input)
}

// TestCrossValidationRandomGrammars: the persistent-stack matcher and the
// deep-copy vector-stack interpreter must agree on acceptance of sampled
// strings (positive) and mutations (either way, but identical).
func TestCrossValidationRandomGrammars(t *testing.T) {
	rng := rand.New(rand.NewSource(20250612))
	tok := testTok(t)
	grammars := 0
	for trial := 0; trial < 60 && grammars < 25; trial++ {
		g := randGrammar(rng, 1+rng.Intn(4))
		if err := g.Validate(); err != nil {
			continue // rare: generator built something degenerate
		}
		grammars++
		for _, opts := range []pda.Options{{}, pda.AllOptimizations} {
			p, err := pda.Compile(g, opts)
			if err != nil {
				t.Fatalf("grammar %s: %v", g.String(), err)
			}
			lcp := NewLlamaCpp(p, tok)
			exec := matcher.NewExec(p)
			for i := 0; i < 6; i++ {
				str, ok := sample(rng, g, nil, g.Rules[g.Root].Body, 0)
				if !ok {
					continue
				}
				m := matcher.New(exec, 0)
				if !m.Advance(str) {
					t.Fatalf("grammar:\n%s\nsampled string %q rejected by matcher", g.String(), str)
				}
				if !m.CanTerminate() {
					t.Fatalf("grammar:\n%s\nsampled string %q not terminable", g.String(), str)
				}
				if !llamaAccepts(lcp, str) {
					t.Fatalf("grammar:\n%s\nsampled %q rejected by oracle", g.String(), str)
				}
				// Mutations: both engines must agree either way.
				for j := 0; j < 4; j++ {
					mut := mutate(rng, str)
					mm := matcher.New(exec, 0)
					got := mm.Advance(mut)
					want := llamaAccepts(lcp, mut)
					if got != want {
						t.Fatalf("grammar:\n%s\nmutant %q: matcher=%v oracle=%v", g.String(), mut, got, want)
					}
				}
			}
		}
	}
	if grammars < 10 {
		t.Fatalf("only %d usable random grammars", grammars)
	}
}

// TestCrossValidationMasks: cached masks equal oracle masks on random
// grammars at several positions of a sampled string.
func TestCrossValidationMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tok := testTok(t)
	checked := 0
	for trial := 0; trial < 40 && checked < 8; trial++ {
		g := randGrammar(rng, 1+rng.Intn(3))
		if err := g.Validate(); err != nil {
			continue
		}
		p, err := pda.Compile(g, pda.AllOptimizations)
		if err != nil {
			continue
		}
		str, ok := sample(rng, g, nil, g.Rules[g.Root].Body, 0)
		if !ok || len(str) == 0 {
			continue
		}
		checked++
		cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
		xg := NewXGBackend(p, cache, tok, "").NewSession()
		oracle := NewLlamaCpp(p, tok).NewSession()
		got := bitset.New(tok.VocabSize())
		want := bitset.New(tok.VocabSize())
		ids := tok.Encode(string(str))
		for step := 0; step <= len(ids) && step < 6; step++ {
			xg.FillMask(got)
			oracle.FillMask(want)
			if !got.Equal(want) {
				for b := 0; b < tok.VocabSize(); b++ {
					if got.Get(b) != want.Get(b) {
						t.Fatalf("grammar:\n%s\nstep %d token %q: cache=%v oracle=%v",
							g.String(), step, tok.TokenBytes(int32(b)), got.Get(b), want.Get(b))
					}
				}
			}
			if step < len(ids) {
				if err := xg.Accept(ids[step]); err != nil {
					// The sampled string may not tokenize into a valid
					// stepwise path if a token crosses the string end;
					// both engines must agree on the failure.
					if oErr := oracle.Accept(ids[step]); oErr == nil {
						t.Fatalf("grammar:\n%s\nxg rejected token %d, oracle accepted", g.String(), ids[step])
					}
					break
				}
				if err := oracle.Accept(ids[step]); err != nil {
					t.Fatalf("grammar:\n%s\noracle rejected token %d after xg accepted", g.String(), ids[step])
				}
			}
		}
	}
	if checked < 4 {
		t.Fatalf("only %d grammars mask-checked", checked)
	}
	_ = tokenizer.EosID
}
