package baselines

import (
	"fmt"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// LlamaCpp is a llama.cpp-grammar-style engine: the PDA is interpreted with
// plain stack vectors that are deep-copied on every nondeterministic branch,
// and every decoding step checks the entire vocabulary token by token. No
// caching, no prefix sharing, no persistent stacks — this is the "PDA
// Baseline" row of Table 3.
type LlamaCpp struct {
	p   *pda.PDA
	tok *tokenizer.Tokenizer
}

// NewLlamaCpp compiles g without structure optimizations (faithful to the
// baseline) unless optimized is true (the "+ node merging" ablation row).
func NewLlamaCpp(p *pda.PDA, tok *tokenizer.Tokenizer) *LlamaCpp {
	return &LlamaCpp{p: p, tok: tok}
}

// Name implements Backend.
func (l *LlamaCpp) Name() string { return "llama.cpp-grammar" }

// vecState is a plain stack: elements are return nodes, the last element is
// the current node. Copied wholesale on every branch, as llama.cpp does.
type vecState []int32

// NewSession implements Backend.
func (l *LlamaCpp) NewSession() Session {
	s := &llamaSession{l: l}
	s.states = s.closure([]vecState{{l.p.RuleStart[l.p.Root]}})
	return s
}

type llamaSession struct {
	l          *LlamaCpp
	states     []vecState
	terminated bool
}

func eqVec(a, b vecState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsVec(set []vecState, v vecState) bool {
	for _, x := range set {
		if eqVec(x, v) {
			return true
		}
	}
	return false
}

// closure expands pushes and pops, copying stacks eagerly.
func (s *llamaSession) closure(set []vecState) []vecState {
	p := s.l.p
	for i := 0; i < len(set); i++ {
		st := set[i]
		cur := st[len(st)-1]
		node := &p.Nodes[cur]
		if node.Final && len(st) > 1 {
			// Pop: copy without the top element.
			ns := make(vecState, len(st)-1)
			copy(ns, st[:len(st)-1])
			if !containsVec(set, ns) {
				set = append(set, ns)
			}
		}
		for _, e := range node.Edges {
			if e.Kind != fsa.EdgeRule {
				continue
			}
			ns := make(vecState, len(st)+1)
			copy(ns, st[:len(st)-1])
			ns[len(st)-1] = e.To
			ns[len(st)] = p.RuleStart[e.Rule]
			if !containsVec(set, ns) {
				set = append(set, ns)
			}
		}
	}
	return set
}

func (s *llamaSession) stepByte(set []vecState, b byte) []vecState {
	p := s.l.p
	var out []vecState
	for _, st := range set {
		cur := st[len(st)-1]
		for _, e := range p.Nodes[cur].Edges {
			if e.Kind == fsa.EdgeByte && b >= e.Lo && b <= e.Hi {
				ns := make(vecState, len(st))
				copy(ns, st)
				ns[len(ns)-1] = e.To
				if !containsVec(out, ns) {
					out = append(out, ns)
				}
			}
		}
	}
	return out
}

// matchToken reports whether the token's bytes are consumable from the
// current states. Fresh copies every time — the llama.cpp cost model.
func (s *llamaSession) matchToken(tb []byte) bool {
	set := make([]vecState, len(s.states))
	for i, st := range s.states {
		c := make(vecState, len(st))
		copy(c, st)
		set[i] = c
	}
	for _, b := range tb {
		set = s.closure(set)
		set = s.stepByte(set, b)
		if len(set) == 0 {
			return false
		}
	}
	return true
}

// FillMask implements Session by scanning the whole vocabulary.
func (s *llamaSession) FillMask(mask *bitset.Bitset) {
	mask.ClearAll()
	if s.terminated {
		return
	}
	vocab := s.l.tok.VocabSize()
	for id := int32(0); id < int32(vocab); id++ {
		if s.l.tok.IsSpecial(id) {
			continue
		}
		if s.matchToken(s.l.tok.TokenBytes(id)) {
			mask.Set(int(id))
		}
	}
	finishMask(mask, s.l.tok, s.CanTerminate())
}

// CanTerminate implements Session.
func (s *llamaSession) CanTerminate() bool {
	for _, st := range s.states {
		if len(st) == 1 && s.l.p.Nodes[st[0]].Final {
			return true
		}
	}
	return false
}

// IsTerminated implements Session.
func (s *llamaSession) IsTerminated() bool { return s.terminated }

// Accept implements Session.
func (s *llamaSession) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("llama.cpp-grammar: already terminated")
	}
	if id == tokenizer.EosID {
		if !s.CanTerminate() {
			return fmt.Errorf("llama.cpp-grammar: premature EOS")
		}
		s.terminated = true
		return nil
	}
	set := s.states
	for _, b := range s.l.tok.TokenBytes(id) {
		set = s.closure(set)
		set = s.stepByte(set, b)
		if len(set) == 0 {
			return fmt.Errorf("llama.cpp-grammar: token %d violates grammar", id)
		}
	}
	s.states = s.closure(set)
	return nil
}
