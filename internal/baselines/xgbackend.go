package baselines

import (
	"fmt"

	"xgrammar/internal/bitset"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// XGBackend adapts the XGrammar engine (PDA + adaptive token mask cache) to
// the Backend interface so experiments can swap it against the baselines.
// A nil cache degrades to the full-scan path (used by the Table 3 ablation).
type XGBackend struct {
	p     *pda.PDA
	cache *maskcache.Cache
	tok   *tokenizer.Tokenizer
	// SharePrefixScan controls the no-cache fallback's use of the
	// persistent-stack prefix sharing.
	SharePrefixScan bool
	label           string
}

// NewXGBackend wraps a compiled grammar. cache may be nil.
func NewXGBackend(p *pda.PDA, cache *maskcache.Cache, tok *tokenizer.Tokenizer, label string) *XGBackend {
	if label == "" {
		label = "xgrammar"
	}
	return &XGBackend{p: p, cache: cache, tok: tok, SharePrefixScan: true, label: label}
}

// Name implements Backend.
func (x *XGBackend) Name() string { return x.label }

// NewSession implements Backend.
func (x *XGBackend) NewSession() Session {
	exec := matcher.NewExec(x.p)
	return &xgSession{
		x:    x,
		exec: exec,
		m:    matcher.New(exec, 0),
		fc:   maskcache.NewFillContext(x.tok.VocabSize()),
	}
}

type xgSession struct {
	x          *XGBackend
	exec       *matcher.Exec
	m          *matcher.Matcher
	fc         *maskcache.FillContext
	terminated bool
}

func (s *xgSession) FillMask(mask *bitset.Bitset) {
	if s.terminated {
		mask.ClearAll()
		return
	}
	canTerm := s.m.CanTerminate()
	if s.x.cache != nil {
		s.x.cache.FillMask(s.exec, s.m.States(), mask, canTerm, s.fc)
	} else {
		maskcache.FullScanMask(s.exec, s.x.tok, s.m.States(), mask, canTerm, s.x.SharePrefixScan)
	}
	finishMask(mask, s.x.tok, canTerm)
}

func (s *xgSession) CanTerminate() bool { return !s.terminated && s.m.CanTerminate() }

func (s *xgSession) IsTerminated() bool { return s.terminated }

func (s *xgSession) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("%s: already terminated", s.x.label)
	}
	if id == tokenizer.EosID {
		if !s.m.CanTerminate() {
			return fmt.Errorf("%s: premature EOS", s.x.label)
		}
		s.terminated = true
		return nil
	}
	if s.x.tok.IsSpecial(id) {
		return fmt.Errorf("%s: special token %d", s.x.label, id)
	}
	if !s.m.Advance(s.x.tok.TokenBytes(id)) {
		return fmt.Errorf("%s: token %d violates grammar", s.x.label, id)
	}
	return nil
}

// JumpForward exposes the deterministic continuation for engines that
// support it (only XGrammar does).
func (s *xgSession) JumpForward() string {
	if s.terminated {
		return ""
	}
	return s.m.JumpForward()
}

// AcceptString advances the session by raw bytes (jump-forward insertion).
func (s *xgSession) AcceptString(text string) error {
	if s.terminated {
		return fmt.Errorf("%s: already terminated", s.x.label)
	}
	if !s.m.Advance([]byte(text)) {
		return fmt.Errorf("%s: string %q violates grammar", s.x.label, text)
	}
	return nil
}

// JumpForwarder is implemented by sessions that support jump-forward
// decoding (Appendix B).
type JumpForwarder interface {
	JumpForward() string
	AcceptString(text string) error
}
