package baselines

import "xgrammar/internal/serve"

// PooledXGBackend serves XGrammar sessions out of a serve.SessionPool: every
// NewSession recycles the matcher, fill context, and mask buffer of a
// sequence that already left the batch, so steady-state continuous batching
// allocates no grammar state. Sessions returned by NewSession implement
// JumpForwarder and expose Close() for the engine to hand them back when a
// sequence finishes.
type PooledXGBackend struct {
	pool  *serve.SessionPool
	label string
}

// NewPooledXGBackend wraps a session pool as an engine backend.
func NewPooledXGBackend(pool *serve.SessionPool, label string) *PooledXGBackend {
	if label == "" {
		label = "xgrammar-pooled"
	}
	return &PooledXGBackend{pool: pool, label: label}
}

// Name implements Backend.
func (b *PooledXGBackend) Name() string { return b.label }

// NewSession implements Backend by acquiring a pooled session.
func (b *PooledXGBackend) NewSession() Session { return b.pool.Acquire() }

// Pool returns the underlying session pool (for stats).
func (b *PooledXGBackend) Pool() *serve.SessionPool { return b.pool }
