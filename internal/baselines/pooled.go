package baselines

import "xgrammar/internal/serve"

// PooledXGBackend serves XGrammar sessions out of a serve.SessionPool: every
// NewSession recycles the matcher, fill context, and mask buffer of a
// sequence that already left the batch, so steady-state continuous batching
// allocates no grammar state. Sessions returned by NewSession implement
// JumpForwarder and expose Close() for the engine to hand them back when a
// sequence finishes.
type PooledXGBackend struct {
	pool  *serve.SessionPool
	acq   *serve.Acquirer // nil: forced prefixes replay cold
	label string
}

// NewPooledXGBackend wraps a session pool as an engine backend.
func NewPooledXGBackend(pool *serve.SessionPool, label string) *PooledXGBackend {
	if label == "" {
		label = "xgrammar-pooled"
	}
	return &PooledXGBackend{pool: pool, label: label}
}

// NewWarmPooledXGBackend wraps a warm-start acquisition layer as an engine
// backend: NewWarmSession restores cached constraint-state checkpoints
// instead of replaying forced prefixes from the grammar start.
func NewWarmPooledXGBackend(acq *serve.Acquirer, label string) *PooledXGBackend {
	if label == "" {
		label = "xgrammar-pooled-warm"
	}
	return &PooledXGBackend{pool: acq.Pool(), acq: acq, label: label}
}

// Name implements Backend.
func (b *PooledXGBackend) Name() string { return b.label }

// NewSession implements Backend by acquiring a pooled session.
func (b *PooledXGBackend) NewSession() Session { return b.pool.Acquire() }

// NewWarmSession implements WarmBackend: with an acquisition layer the
// session warm-starts from the deepest cached checkpoint covering prefix;
// without one the prefix replays cold. Either way the returned session is
// byte-identical to a fresh session that accepted prefix.
func (b *PooledXGBackend) NewWarmSession(prefix []byte) (Session, int, error) {
	if b.acq == nil {
		s := b.pool.Acquire()
		if len(prefix) > 0 {
			if err := s.AcceptBytes(prefix); err != nil {
				s.Close()
				return nil, 0, err
			}
		}
		return s, len(prefix), nil
	}
	s, res, err := b.acq.Acquire(prefix)
	if err != nil {
		return nil, 0, err
	}
	return s, res.ReplayedBytes, nil
}

// Pool returns the underlying session pool (for stats).
func (b *PooledXGBackend) Pool() *serve.SessionPool { return b.pool }

// Acquirer returns the warm-start acquisition layer, or nil for a cold
// pooled backend.
func (b *PooledXGBackend) Acquirer() *serve.Acquirer { return b.acq }
