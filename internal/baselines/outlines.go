package baselines

import (
	"fmt"
	"sync"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/grammar"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/trie"
)

// FlattenToDFA lowers a non-recursive grammar to a single byte DFA by
// inlining every rule into the root and determinizing — the "schema as
// regex" lowering that regex-based engines rely on.
func FlattenToDFA(g *grammar.Grammar, backend string) (*fsa.DFA, error) {
	if IsRecursive(g) {
		return nil, &ErrUnsupported{Backend: backend, Reason: "recursive grammar (CFG) cannot be expressed as a regular expression"}
	}
	big := grammar.InlineOptions{MaxRuleSize: 1 << 30, MaxResultSize: 1 << 30}
	ig := grammar.Inline(g, big)
	if len(ig.Rules) != 1 {
		return nil, &ErrUnsupported{Backend: backend, Reason: "grammar did not flatten to a single rule"}
	}
	f, err := fsa.BuildRule(ig.Rules[ig.Root].Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", backend, err)
	}
	f = fsa.RemoveEpsilon(f)
	d, err := fsa.Determinize(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", backend, err)
	}
	return d, nil
}

// RegexFSM is an Outlines-style engine: the schema is lowered to a DFA over
// bytes, and for every visited DFA state the engine computes (once, then
// caches) the token-level transition table: which tokens are allowed and
// where each leads. Mask generation after warm-up is a table lookup.
//
// The lazy index is guarded by a mutex because the serving engine fills the
// masks of a whole batch concurrently (Overlap mode), and sessions share
// the backend's index.
type RegexFSM struct {
	dfa   *fsa.DFA
	tok   *tokenizer.Tokenizer
	trie  *trie.Trie
	words int
	mu    sync.Mutex
	masks map[int32][]uint64
	next  map[int64]int32
}

// NewRegexFSM builds the Outlines-style index for a non-recursive grammar.
func NewRegexFSM(g *grammar.Grammar, tok *tokenizer.Tokenizer) (*RegexFSM, error) {
	d, err := FlattenToDFA(g, "outlines-fsm")
	if err != nil {
		return nil, err
	}
	tokens := make([][]byte, tok.VocabSize())
	for id := 0; id < tok.VocabSize(); id++ {
		if tok.IsSpecial(int32(id)) {
			tokens[id] = nil // never matched
		} else {
			tokens[id] = tok.TokenBytes(int32(id))
		}
	}
	return &RegexFSM{
		dfa:   d,
		tok:   tok,
		trie:  trie.Build(tokens),
		words: bitset.WordsFor(tok.VocabSize()),
		masks: map[int32][]uint64{},
		next:  map[int64]int32{},
	}, nil
}

// Name implements Backend.
func (r *RegexFSM) Name() string { return "outlines-fsm" }

// PrecomputeAll walks every reachable DFA state eagerly (Outlines builds its
// index offline); returns the number of states indexed.
func (r *RegexFSM) PrecomputeAll() int {
	seen := map[int32]bool{r.dfa.Start: true}
	work := []int32{r.dfa.Start}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		r.index(s)
		// Successor states via token transitions.
		for id := 0; id < r.tok.VocabSize(); id++ {
			if ns, ok := r.nextState(s, int32(id)); ok && !seen[ns] {
				seen[ns] = true
				work = append(work, ns)
			}
		}
	}
	return len(seen)
}

// nextState returns the indexed token transition for (state, id), if known.
func (r *RegexFSM) nextState(state, id int32) (int32, bool) {
	r.mu.Lock()
	ns, ok := r.next[int64(state)<<32|int64(id)]
	r.mu.Unlock()
	return ns, ok
}

// index computes (and caches) the allowed-token mask and token transitions
// for DFA state s by walking the vocabulary trie against the DFA.
func (r *RegexFSM) index(s int32) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.masks[s]; ok {
		return m
	}
	mask := make([]uint64, r.words)
	bs := bitset.FromWords(mask, r.tok.VocabSize())
	// The special-token trie entries are nil (empty), ending at the root;
	// skip the root's token check.
	var walk func(tn int32, ds int32)
	walk = func(tn int32, ds int32) {
		r.trie.Children(tn, func(b byte, child int32) {
			nd := r.dfa.Next(ds, b)
			if nd < 0 {
				return
			}
			if id := r.trie.Token(child); id >= 0 && !r.tok.IsSpecial(id) {
				bs.Set(int(id))
				r.next[int64(s)<<32|int64(id)] = nd
			}
			walk(child, nd)
		})
	}
	walk(r.trie.Root(), s)
	r.masks[s] = mask
	return mask
}

// NewSession implements Backend.
func (r *RegexFSM) NewSession() Session {
	return &fsmSession{r: r, cur: r.dfa.Start}
}

type fsmSession struct {
	r          *RegexFSM
	cur        int32
	terminated bool
}

func (s *fsmSession) FillMask(mask *bitset.Bitset) {
	if s.terminated {
		mask.ClearAll()
		return
	}
	cached := s.r.index(s.cur)
	copy(mask.Words(), cached)
	finishMask(mask, s.r.tok, s.CanTerminate())
}

func (s *fsmSession) CanTerminate() bool {
	return !s.terminated && s.r.dfa.Accept[s.cur]
}

func (s *fsmSession) IsTerminated() bool { return s.terminated }

// JumpForward returns the DFA's unique forced continuation (Appendix B):
// bytes are appended while exactly one outgoing byte exists and the state
// does not accept.
func (s *fsmSession) JumpForward() string {
	if s.terminated {
		return ""
	}
	var out []byte
	cur := s.cur
	for len(out) < 4096 {
		if s.r.dfa.Accept[cur] {
			break
		}
		next := int32(-1)
		var nb byte
		count := 0
		for b := 0; b < 256; b++ {
			if n := s.r.dfa.Next(cur, byte(b)); n >= 0 {
				count++
				if count > 1 {
					break
				}
				next, nb = n, byte(b)
			}
		}
		if count != 1 {
			break
		}
		out = append(out, nb)
		cur = next
	}
	return string(out)
}

// AcceptString advances the session by raw bytes (jump-forward insertion).
func (s *fsmSession) AcceptString(text string) error {
	cur := s.cur
	for i := 0; i < len(text); i++ {
		cur = s.r.dfa.Next(cur, text[i])
		if cur < 0 {
			return fmt.Errorf("outlines-fsm: string %q violates grammar", text)
		}
	}
	s.cur = cur
	return nil
}

func (s *fsmSession) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("outlines-fsm: already terminated")
	}
	if id == tokenizer.EosID {
		if !s.CanTerminate() {
			return fmt.Errorf("outlines-fsm: premature EOS")
		}
		s.terminated = true
		return nil
	}
	if s.r.tok.IsSpecial(id) {
		return fmt.Errorf("outlines-fsm: special token %d", id)
	}
	// Use the indexed transition when available, else walk the bytes.
	if ns, ok := s.r.nextState(s.cur, id); ok {
		s.cur = ns
		return nil
	}
	cur := s.cur
	for _, b := range s.r.tok.TokenBytes(id) {
		cur = s.r.dfa.Next(cur, b)
		if cur < 0 {
			return fmt.Errorf("outlines-fsm: token %d violates grammar", id)
		}
	}
	s.cur = cur
	return nil
}

// OutlinesCFG approximates Outlines' lexer+parser CFG path: an interpreted
// full-vocabulary scan per step (with shared-prefix walking but no token
// mask cache), which is why Outlines' CFG latency is orders of magnitude
// above its FSM latency in Figure 9.
type OutlinesCFG struct {
	p   *pda.PDA
	tok *tokenizer.Tokenizer
}

// NewOutlinesCFG wraps a compiled PDA.
func NewOutlinesCFG(p *pda.PDA, tok *tokenizer.Tokenizer) *OutlinesCFG {
	return &OutlinesCFG{p: p, tok: tok}
}

// Name implements Backend.
func (o *OutlinesCFG) Name() string { return "outlines-cfg" }

// NewSession implements Backend.
func (o *OutlinesCFG) NewSession() Session {
	exec := matcher.NewExec(o.p)
	return &outlinesCFGSession{o: o, exec: exec, m: matcher.New(exec, 0)}
}

type outlinesCFGSession struct {
	o          *OutlinesCFG
	exec       *matcher.Exec
	m          *matcher.Matcher
	terminated bool
}

func (s *outlinesCFGSession) FillMask(mask *bitset.Bitset) {
	if s.terminated {
		mask.ClearAll()
		return
	}
	maskcache.FullScanMask(s.exec, s.o.tok, s.m.States(), mask, s.m.CanTerminate(), true)
	finishMask(mask, s.o.tok, s.m.CanTerminate())
}

func (s *outlinesCFGSession) CanTerminate() bool { return !s.terminated && s.m.CanTerminate() }

func (s *outlinesCFGSession) IsTerminated() bool { return s.terminated }

func (s *outlinesCFGSession) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("outlines-cfg: already terminated")
	}
	if id == tokenizer.EosID {
		if !s.m.CanTerminate() {
			return fmt.Errorf("outlines-cfg: premature EOS")
		}
		s.terminated = true
		return nil
	}
	if s.o.tok.IsSpecial(id) {
		return fmt.Errorf("outlines-cfg: special token %d", id)
	}
	if !s.m.Advance(s.o.tok.TokenBytes(id)) {
		return fmt.Errorf("outlines-cfg: token %d violates grammar", id)
	}
	return nil
}
