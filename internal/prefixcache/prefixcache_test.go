package prefixcache

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xgrammar/internal/maskcache"
)

// publish reserves and immediately publishes key with a small mask, skipping
// the capture phase real sessions go through.
func publish(t testing.TB, c *Cache, grammar, key string) bool {
	t.Helper()
	if !c.Reserve(grammar, []byte(key)) {
		return false
	}
	c.Publish(grammar, []byte(key), nil, []uint64{uint64(len(key))}, maskcache.FillStats{})
	return true
}

func TestLookupDeepestPrefix(t *testing.T) {
	c := New(1 << 20)
	for _, k := range []string{`{"name": "`, `{"name": "alice", "age": `, `{"id": `} {
		if !publish(t, c, "g1", k) {
			t.Fatalf("publish %q failed", k)
		}
	}
	cases := []struct {
		query string
		depth int
	}{
		{`{"name": "alice", "age": 42}`, len(`{"name": "alice", "age": `)},
		{`{"name": "bob"}`, len(`{"name": "`)},
		{`{"id": 7}`, len(`{"id": `)},
		{`{"nam`, 0},
		{`[1, 2]`, 0},
		{`{"name": "`, len(`{"name": "`)}, // exact
	}
	for _, tc := range cases {
		e, depth := c.Lookup("g1", []byte(tc.query))
		if tc.depth == 0 {
			if e != nil {
				t.Fatalf("query %q: unexpected hit at depth %d", tc.query, depth)
			}
			continue
		}
		if e == nil || depth != tc.depth {
			t.Fatalf("query %q: got depth %d, want %d", tc.query, depth, tc.depth)
		}
		if mask, _, ok := e.Mask(); !ok || mask[0] != uint64(tc.depth) {
			t.Fatalf("query %q: wrong entry mask %v", tc.query, mask)
		}
	}
	// Other grammars never cross-hit.
	if e, _ := c.Lookup("g2", []byte(`{"name": "alice"`)); e != nil {
		t.Fatal("cross-grammar hit")
	}
	st := c.Stats()
	if st.Entries != 3 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReserveSingleflight(t *testing.T) {
	c := New(1 << 20)
	if !c.Reserve("g", []byte("abc")) {
		t.Fatal("first reserve failed")
	}
	if c.Reserve("g", []byte("abc")) {
		t.Fatal("second reserve won a claimed key")
	}
	// Pending (reserved, unpublished) entries are invisible to Lookup.
	if e, _ := c.Lookup("g", []byte("abcdef")); e != nil {
		t.Fatal("lookup returned a pending entry")
	}
	c.Publish("g", []byte("abc"), nil, nil, maskcache.FillStats{})
	if e, d := c.Lookup("g", []byte("abcdef")); e == nil || d != 3 {
		t.Fatalf("published entry not found (depth %d)", d)
	}
	if c.Reserve("g", []byte("abc")) {
		t.Fatal("reserve won a published key")
	}
	// Abandon releases the claim for someone else.
	if !c.Reserve("g", []byte("xy")) {
		t.Fatal("reserve xy failed")
	}
	c.Abandon("g", []byte("xy"))
	if !c.Reserve("g", []byte("xy")) {
		t.Fatal("reserve after abandon failed")
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	c := New(520) // room for exactly three of this test's 172-byte entries
	keys := []string{"aaaa", "bbbb", "cccc"}
	for _, k := range keys {
		publish(t, c, "g", k)
	}
	// Touch aaaa and cccc so bbbb is the LRU victim.
	for _, k := range []string{"aaaa", "cccc"} {
		if e, _ := c.Lookup("g", []byte(k+"...")); e == nil {
			t.Fatalf("lookup %q missed", k)
		}
	}
	publish(t, c, "g", "dddd")
	if e, _ := c.Lookup("g", []byte("bbbb...")); e != nil {
		t.Fatal("LRU victim bbbb still present")
	}
	for _, k := range []string{"aaaa", "cccc", "dddd"} {
		if e, _ := c.Lookup("g", []byte(k+"...")); e == nil {
			t.Fatalf("%q evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("eviction counters not bumped: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestInvalidateGrammar(t *testing.T) {
	c := New(1 << 20)
	publish(t, c, "g1", "aaa")
	publish(t, c, "g1", "aaabbb")
	publish(t, c, "g2", "aaa")
	if dropped := c.InvalidateGrammar("g1"); dropped <= 0 {
		t.Fatal("invalidate dropped nothing")
	}
	if e, _ := c.Lookup("g1", []byte("aaabbbccc")); e != nil {
		t.Fatal("g1 entry survived invalidation")
	}
	if e, _ := c.Lookup("g2", []byte("aaaxxx")); e == nil {
		t.Fatal("g2 entry lost")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries %d after invalidate, want 1", st.Entries)
	}
	// Republishing under the invalidated grammar works.
	if !publish(t, c, "g1", "aaa") {
		t.Fatal("republish after invalidate failed")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if e, _ := c.Lookup("g", []byte("abc")); e != nil {
		t.Fatal("nil cache hit")
	}
	if c.Reserve("g", []byte("abc")) {
		t.Fatal("nil cache reserved")
	}
	c.Publish("g", []byte("abc"), nil, nil, maskcache.FillStats{})
	c.Abandon("g", []byte("abc"))
	c.InvalidateGrammar("g")
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("New with no budget should return the nil disabled cache")
	}
}

// TestConcurrentAcquireReleaseEvict hammers lookup, reserve/publish/abandon,
// and grammar invalidation from many goroutines; run under -race.
func TestConcurrentAcquireReleaseEvict(t *testing.T) {
	c := New(8 << 10) // small budget so eviction churns constantly
	grammars := []string{"g0", "g1", "g2"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				g := grammars[rng.Intn(len(grammars))]
				key := []byte(strings.Repeat("ab", 1+rng.Intn(20)) + fmt.Sprint(rng.Intn(8)))
				switch rng.Intn(10) {
				case 0:
					c.InvalidateGrammar(g)
				case 1, 2:
					if c.Reserve(g, key) {
						if rng.Intn(4) == 0 {
							c.Abandon(g, key)
						} else {
							c.Publish(g, key, nil, []uint64{1, 2, 3}, maskcache.FillStats{})
						}
					}
				default:
					if e, depth := c.Lookup(g, key); e != nil {
						if depth <= 0 || depth > len(key) {
							panic("bad depth")
						}
						e.Mask()
						e.Checkpoint()
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d after churn", st.Bytes, st.MaxBytes)
	}
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("negative occupancy: %+v", st)
	}
}

// FuzzRadixVsMap cross-checks radix insert/lookup against a naive map
// reference: the deepest published key that prefixes the query.
func FuzzRadixVsMap(f *testing.F) {
	f.Add([]byte(`{"name": "|{"name": "al|{"id|{"name": "alice"`), byte(3))
	f.Add([]byte("a|ab|abc|abd|b|query"), byte(5))
	f.Add([]byte("||x"), byte(1))
	f.Fuzz(func(t *testing.T, data []byte, nkeys byte) {
		parts := strings.Split(string(data), "|")
		if len(parts) < 2 {
			return
		}
		query := []byte(parts[len(parts)-1])
		keys := parts[:len(parts)-1]
		if int(nkeys) < len(keys) {
			keys = keys[:nkeys]
		}
		c := New(1 << 20)
		ref := map[string]bool{}
		for _, k := range keys {
			if k == "" {
				continue
			}
			if c.Reserve("g", []byte(k)) {
				c.Publish("g", []byte(k), nil, nil, maskcache.FillStats{})
				ref[k] = true
			} else if !ref[k] {
				t.Fatalf("reserve %q lost but key not present in reference", k)
			}
		}
		wantDepth := 0
		for i := 1; i <= len(query); i++ {
			if ref[string(query[:i])] {
				wantDepth = i
			}
		}
		e, depth := c.Lookup("g", query)
		if wantDepth == 0 {
			if e != nil {
				t.Fatalf("keys %q query %q: unexpected hit depth %d", keys, query, depth)
			}
			return
		}
		if e == nil || depth != wantDepth {
			t.Fatalf("keys %q query %q: got depth %d want %d", keys, query, depth, wantDepth)
		}
	})
}
