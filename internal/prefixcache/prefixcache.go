// Package prefixcache lifts the paper's per-grammar mask precomputation
// (§3.1) to per-workload scope: a concurrency-safe radix tree keyed by
// (grammar ID, accepted byte prefix) whose nodes hold portable matcher
// checkpoints plus the token mask the serving path already computed at that
// position. Templated traffic — thousands of requests sharing one grammar
// and one forced prefix — warm-starts from the deepest cached checkpoint and
// replays only the residual bytes instead of the whole prefix.
//
// The cache is byte-budgeted with logical-clock LRU eviction, publication is
// singleflighted (Reserve claims a key before the expensive capture so
// concurrent sessions never duplicate the work), and the lookup hot path is
// allocation- and clock-free (`//xg:hotpath`, xglint-clean): a read-locked
// radix descent plus two atomic touches.
package prefixcache

import (
	"sync"
	"sync/atomic"

	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
)

// entryOverhead approximates the fixed per-entry bookkeeping (radix node,
// entry struct, slice headers) charged against the byte budget.
const entryOverhead = 160

// Entry is one published cache node: a portable checkpoint at a byte prefix,
// optionally with the memoized allowed-token mask at that position. Entries
// are immutable once published; readers may hold them after eviction.
type Entry struct {
	cp      *matcher.Checkpoint
	mask    []uint64
	stats   maskcache.FillStats
	hasMask bool
	size    int64
	// ready flips true at publication; lookups skip reserved-but-unbuilt
	// entries without taking the write lock.
	ready atomic.Bool
	// stamp is the logical-clock LRU timestamp (no wall clock on the hot
	// path), refreshed by every lookup hit.
	stamp atomic.Int64
}

// Checkpoint returns the entry's portable matcher snapshot.
func (e *Entry) Checkpoint() *matcher.Checkpoint { return e.cp }

// Mask returns the memoized allowed-token mask captured at the entry's
// prefix and its fill statistics; ok is false when the entry was published
// without a mask (an intermediate-depth checkpoint).
func (e *Entry) Mask() (mask []uint64, stats maskcache.FillStats, ok bool) {
	return e.mask, e.stats, e.hasMask
}

// tnode is one radix-tree node. The path from the root spells the byte
// prefix; edges are label-compressed.
type tnode struct {
	label    []byte
	parent   *tnode
	children []*tnode
	entry    *Entry
	depth    int // byte length of the prefix this node spells
}

func (n *tnode) child(b byte) *tnode {
	for _, c := range n.children {
		if c.label[0] == b {
			return c
		}
	}
	return nil
}

func (n *tnode) removeChild(c *tnode) {
	for i, x := range n.children {
		if x == c {
			n.children[i] = n.children[len(n.children)-1]
			n.children = n.children[:len(n.children)-1]
			return
		}
	}
}

// Cache is the cross-request constraint-state prefix cache. The zero value
// is not usable; construct with New. A nil *Cache is a valid disabled cache:
// Lookup misses and Reserve declines.
type Cache struct {
	mu      sync.RWMutex
	roots   map[string]*tnode
	nodes   []*tnode // nodes with an entry (published or pending), for eviction scans
	budget  int64
	bytes   int64
	entries int

	clock        atomic.Int64
	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	evictedBytes atomic.Int64
}

// New returns a cache with the given byte budget. A budget <= 0 returns nil:
// the disabled cache.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{roots: make(map[string]*tnode), budget: budget}
}

// Lookup returns the deepest published entry whose key is a prefix of
// prefix (and the byte depth of that key), or nil on a miss. The hit's LRU
// stamp is refreshed. Allocation- and clock-free.
//
//xg:hotpath
func (c *Cache) Lookup(grammarID string, prefix []byte) (*Entry, int) {
	if c == nil {
		return nil, 0
	}
	var best *Entry
	bestDepth := 0
	c.mu.RLock()
	n := c.roots[grammarID]
	depth := 0
	for n != nil {
		if n.entry != nil && n.entry.ready.Load() {
			best = n.entry
			bestDepth = depth
		}
		if depth == len(prefix) {
			break
		}
		child := n.child(prefix[depth])
		if child == nil || len(prefix)-depth < len(child.label) || !labelMatches(child.label, prefix[depth:]) {
			break
		}
		depth += len(child.label)
		n = child
	}
	c.mu.RUnlock()
	if best == nil {
		c.misses.Add(1)
		return nil, 0
	}
	best.stamp.Store(c.clock.Add(1))
	c.hits.Add(1)
	return best, bestDepth
}

// labelMatches reports whether s begins with label; len(s) >= len(label)
// must hold (checked by the caller).
func labelMatches(label, s []byte) bool {
	for i, b := range label {
		if s[i] != b {
			return false
		}
	}
	return true
}

// Reserve claims (grammarID, prefix) for publication. It returns true when
// the caller won the claim and must eventually Publish or Abandon the key;
// false when an entry (published or pending) already exists — the
// singleflight: concurrent sessions replaying the same prefix capture its
// checkpoint exactly once.
func (c *Cache) Reserve(grammarID string, prefix []byte) bool {
	if c == nil || len(prefix) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	root := c.roots[grammarID]
	if root == nil {
		root = &tnode{}
		c.roots[grammarID] = root
	}
	n := c.insertLocked(root, prefix)
	if n.entry != nil {
		return false
	}
	n.entry = &Entry{}
	c.nodes = append(c.nodes, n)
	return true
}

// insertLocked descends from root creating (and splitting) nodes so a node
// spelling exactly key exists, and returns it.
func (c *Cache) insertLocked(root *tnode, key []byte) *tnode {
	n := root
	depth := 0
	for depth < len(key) {
		rest := key[depth:]
		child := n.child(rest[0])
		if child == nil {
			nc := &tnode{label: append([]byte(nil), rest...), parent: n, depth: depth + len(rest)}
			n.children = append(n.children, nc)
			return nc
		}
		common := 0
		for common < len(child.label) && common < len(rest) && child.label[common] == rest[common] {
			common++
		}
		if common < len(child.label) {
			// Split child: a new interior node spells key[:depth+common].
			mid := &tnode{
				label:  append([]byte(nil), child.label[:common]...),
				parent: n,
				depth:  n.depth + common,
			}
			child.label = append([]byte(nil), child.label[common:]...)
			child.parent = mid
			mid.children = append(mid.children, child)
			n.removeChild(child)
			n.children = append(n.children, mid)
			child = mid
		}
		n = child
		depth = n.depth
	}
	return n
}

// Publish installs the checkpoint (and, when mask is non-nil, a copy of the
// memoized allowed-token mask) under a key previously claimed by Reserve,
// then evicts least-recently-used entries beyond the byte budget. Publishing
// an unreserved or already-published key is a no-op.
func (c *Cache) Publish(grammarID string, prefix []byte, cp *matcher.Checkpoint, mask []uint64, stats maskcache.FillStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.findLocked(grammarID, prefix)
	if n == nil || n.entry == nil || n.entry.ready.Load() {
		return
	}
	e := n.entry
	e.cp = cp
	if mask != nil {
		e.mask = append([]uint64(nil), mask...)
		e.stats = stats
		e.hasMask = true
	}
	e.size = entryOverhead + int64(len(prefix)) + 8*int64(len(e.mask))
	if cp != nil {
		e.size += cp.SizeBytes()
	}
	e.stamp.Store(c.clock.Add(1))
	e.ready.Store(true)
	c.bytes += e.size
	c.entries++
	c.evictLocked(n)
}

// Abandon drops an unfulfilled reservation so another session can claim the
// key. Abandoning a published or unknown key is a no-op.
func (c *Cache) Abandon(grammarID string, prefix []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.findLocked(grammarID, prefix)
	if n == nil || n.entry == nil || n.entry.ready.Load() {
		return
	}
	c.dropLocked(n)
}

// findLocked returns the node spelling exactly key, or nil.
func (c *Cache) findLocked(grammarID string, key []byte) *tnode {
	n := c.roots[grammarID]
	depth := 0
	for n != nil {
		if depth == len(key) {
			return n
		}
		child := n.child(key[depth])
		if child == nil || len(key)-depth < len(child.label) || !labelMatches(child.label, key[depth:]) {
			return nil
		}
		depth += len(child.label)
		n = child
	}
	return nil
}

// evictLocked drops least-recently-used published entries until the budget
// holds, never evicting keep (the entry just published).
func (c *Cache) evictLocked(keep *tnode) {
	for c.bytes > c.budget {
		var victim *tnode
		var victimStamp int64
		for _, n := range c.nodes {
			if n == keep || n.entry == nil || !n.entry.ready.Load() {
				continue
			}
			if st := n.entry.stamp.Load(); victim == nil || st < victimStamp {
				victim, victimStamp = n, st
			}
		}
		if victim == nil {
			return
		}
		c.evictions.Add(1)
		c.evictedBytes.Add(victim.entry.size)
		c.dropLocked(victim)
	}
}

// dropLocked removes n's entry, un-accounts its bytes, and prunes now-empty
// radix branches.
func (c *Cache) dropLocked(n *tnode) {
	if n.entry.ready.Load() {
		c.bytes -= n.entry.size
		c.entries--
	}
	n.entry = nil
	for i, x := range c.nodes {
		if x == n {
			c.nodes[i] = c.nodes[len(c.nodes)-1]
			c.nodes = c.nodes[:len(c.nodes)-1]
			break
		}
	}
	for n != nil && n.parent != nil && n.entry == nil && len(n.children) == 0 {
		p := n.parent
		p.removeChild(n)
		n = p
	}
}

// InvalidateGrammar removes every entry under grammarID — called when the
// compiled grammar is evicted from its own LRU, so a recompiled grammar
// (same content-addressed ID, but possibly a different automaton build)
// never restores stale checkpoints. It returns the number of bytes dropped.
func (c *Cache) InvalidateGrammar(grammarID string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	root := c.roots[grammarID]
	if root == nil {
		return 0
	}
	delete(c.roots, grammarID)
	var dropped int64
	kept := c.nodes[:0]
	for _, n := range c.nodes {
		r := n
		for r.parent != nil {
			r = r.parent
		}
		if r != root {
			kept = append(kept, n)
			continue
		}
		if n.entry != nil && n.entry.ready.Load() {
			dropped += n.entry.size
			c.bytes -= n.entry.size
			c.entries--
			c.evictions.Add(1)
			c.evictedBytes.Add(n.entry.size)
		}
		n.entry = nil
	}
	c.nodes = kept
	return dropped
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// Hits and Misses count Lookup outcomes (a hit at any depth counts).
	Hits, Misses int64
	// Evictions counts entries dropped for budget or grammar invalidation;
	// EvictedBytes sums their sizes.
	Evictions    int64
	EvictedBytes int64
	// Entries and Bytes describe current occupancy against MaxBytes.
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// Stats returns a snapshot of the cache counters. Safe on a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	entries, bytes, budget := c.entries, c.bytes, c.budget
	c.mu.RUnlock()
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		EvictedBytes: c.evictedBytes.Load(),
		Entries:      entries,
		Bytes:        bytes,
		MaxBytes:     budget,
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
