package xgrammar

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func testTokenizer(t testing.TB) *TokenizerInfo {
	t.Helper()
	return DefaultTokenizer(800)
}

func mustCompileJSON(t testing.TB, opts ...CompilerOption) *CompiledGrammar {
	t.Helper()
	cg, err := NewCompiler(testTokenizer(t), opts...).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestCompileBuiltins(t *testing.T) {
	c := NewCompiler(testTokenizer(t))
	for name, f := range map[string]func() (*CompiledGrammar, error){
		"json":   c.CompileBuiltinJSON,
		"xml":    c.CompileBuiltinXML,
		"python": c.CompileBuiltinPythonDSL,
	} {
		cg, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := cg.Stats()
		if st.PDANodes == 0 || !st.HasMaskCache {
			t.Fatalf("%s: degenerate stats %+v", name, st)
		}
	}
}

func TestCompileCustomGrammar(t *testing.T) {
	cg, err := NewCompiler(testTokenizer(t)).CompileGrammar(`root ::= "yes" | "no"`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(cg)
	if err := m.AcceptString("yes"); err != nil {
		t.Fatal(err)
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate after yes")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := NewCompiler(testTokenizer(t)).CompileGrammar(`root ::= undefined_rule`); err == nil {
		t.Fatal("expected error")
	}
}

// TestGuidedGenerationProducesValidJSON drives a random-but-masked
// generation loop and checks the output is grammar-complete.
func TestGuidedGenerationProducesValidJSON(t *testing.T) {
	cg := mustCompileJSON(t)
	info := cg.TokenizerInfo()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		m := NewMatcher(cg)
		mask := make([]uint64, cg.MaskWords())
		var out []int32
		for steps := 0; steps < 200 && !m.IsTerminated(); steps++ {
			m.FillNextTokenBitmask(mask)
			// Collect allowed tokens and pick one at random (bias toward
			// stopping so generations stay short).
			var allowed []int32
			for id := 0; id < info.VocabSize(); id++ {
				if mask[id>>6]&(1<<uint(id&63)) != 0 {
					allowed = append(allowed, int32(id))
				}
			}
			if len(allowed) == 0 {
				t.Fatalf("trial %d: empty mask at step %d (output %q)", trial, steps, info.Decode(out))
			}
			var pick int32
			if m.CanTerminate() && rng.Intn(3) == 0 {
				pick = info.EOSTokenID()
			} else {
				pick = allowed[rng.Intn(len(allowed))]
			}
			if err := m.AcceptToken(pick); err != nil {
				t.Fatalf("trial %d: masked token rejected: %v", trial, err)
			}
			if pick != info.EOSTokenID() {
				out = append(out, pick)
			}
		}
		if !m.IsTerminated() && !m.CanTerminate() {
			continue // ran out of steps mid-structure; fine for random walk
		}
		text := info.Decode(out)
		// Verify with a fresh matcher that the text is complete JSON.
		v := NewMatcher(cg)
		if err := v.AcceptString(text); err != nil {
			t.Fatalf("trial %d: generated %q not accepted: %v", trial, text, err)
		}
	}
}

func TestAcceptTokenRejectsViolations(t *testing.T) {
	cg := mustCompileJSON(t)
	info := cg.TokenizerInfo()
	m := NewMatcher(cg)
	// Find a token that is pure letters; it cannot start JSON (except t/f/n
	// prefixes of true/false/null, so pick one starting with 'z').
	var bad int32 = -1
	for id := 0; id < info.VocabSize(); id++ {
		b := info.TokenBytes(int32(id))
		if len(b) > 0 && b[0] == 'z' && !info.IsSpecial(int32(id)) {
			bad = int32(id)
			break
		}
	}
	if bad < 0 {
		t.Skip("no z-token in small vocab")
	}
	if err := m.AcceptToken(bad); err == nil {
		t.Fatal("grammar-violating token accepted")
	}
	// The failed accept must not corrupt state.
	if err := m.AcceptString(`{"a": 1}`); err != nil {
		t.Fatal(err)
	}
}

func TestStopTokenSemantics(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptToken(cg.TokenizerInfo().EOSTokenID()); err == nil {
		t.Fatal("EOS accepted before completion")
	}
	if err := m.AcceptString(`[1]`); err != nil {
		t.Fatal(err)
	}
	if err := m.AcceptToken(cg.TokenizerInfo().EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	if !m.IsTerminated() {
		t.Fatal("not terminated after EOS")
	}
	if err := m.AcceptString("x"); err == nil {
		t.Fatal("accept after termination")
	}
	mask := make([]uint64, cg.MaskWords())
	m.FillNextTokenBitmask(mask)
	for _, w := range mask {
		if w != 0 {
			t.Fatal("mask not empty after termination")
		}
	}
}

func TestRollbackAcrossTermination(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptString(`[1]`); err != nil {
		t.Fatal(err)
	}
	if err := m.AcceptToken(cg.TokenizerInfo().EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(2); err != nil {
		t.Fatal(err)
	}
	if m.IsTerminated() {
		t.Fatal("still terminated after rollback")
	}
	// Back at the start; a fresh document must parse.
	if err := m.AcceptString(`{"x": true}`); err != nil {
		t.Fatal(err)
	}
}

func TestNoCacheMatchesCache(t *testing.T) {
	cached := mustCompileJSON(t)
	scanned := mustCompileJSON(t, WithoutMaskCache())
	mc, ms := NewMatcher(cached), NewMatcher(scanned)
	maskC := make([]uint64, cached.MaskWords())
	maskS := make([]uint64, scanned.MaskWords())
	doc := `{"k": [1, "s"]}`
	for i := 0; i <= len(doc); i++ {
		mc.FillNextTokenBitmask(maskC)
		ms.FillNextTokenBitmask(maskS)
		for w := range maskC {
			if maskC[w] != maskS[w] {
				t.Fatalf("mask mismatch at pos %d word %d", i, w)
			}
		}
		if i < len(doc) {
			if err := mc.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if err := ms.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAblationOptionsCompile(t *testing.T) {
	for _, opts := range [][]CompilerOption{
		{WithoutNodeMerging()},
		{WithoutRuleInlining()},
		{WithoutContextExpansion()},
		{WithoutNodeMerging(), WithoutRuleInlining(), WithoutContextExpansion(), WithoutMaskCache()},
	} {
		cg := mustCompileJSON(t, opts...)
		m := NewMatcher(cg)
		if err := m.AcceptString(`{"a": [1]}`); err != nil {
			t.Fatalf("opts %d: %v", len(opts), err)
		}
	}
}

func TestFindJumpForwardString(t *testing.T) {
	cg, err := NewCompiler(testTokenizer(t)).CompileGrammar(
		`root ::= "{\"answer\": " ("true" | "false") "}"`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(cg)
	jf := m.FindJumpForwardString()
	if jf != `{"answer": ` {
		t.Fatalf("jump forward = %q", jf)
	}
	if err := m.AcceptString(jf); err != nil {
		t.Fatal(err)
	}
	if got := m.FindJumpForwardString(); got != "" {
		t.Fatalf("ambiguous point returned %q", got)
	}
}

func TestApplyTokenBitmaskInPlace(t *testing.T) {
	logits := []float32{1, 2, 3, 4}
	mask := []uint64{0b1010}
	ApplyTokenBitmaskInPlace(logits, mask)
	if !math.IsInf(float64(logits[0]), -1) || !math.IsInf(float64(logits[2]), -1) {
		t.Fatal("masked logits not -inf")
	}
	if logits[1] != 2 || logits[3] != 4 {
		t.Fatal("allowed logits modified")
	}
}

func TestMatcherResetReuse(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptString(`[1, 2`); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if err := m.AcceptString(`"fresh"`); err != nil {
		t.Fatal(err)
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate")
	}
}

func TestGrammarTextRendering(t *testing.T) {
	cg := mustCompileJSON(t)
	txt := cg.GrammarText()
	if !strings.Contains(txt, "root ::=") {
		t.Fatalf("GrammarText = %q", txt)
	}
}

func TestStatsShape(t *testing.T) {
	cg := mustCompileJSON(t)
	st := cg.Stats()
	if st.ContextIndependent == 0 {
		t.Fatal("no context-independent tokens")
	}
	if st.AdaptiveBytes == 0 || st.FullBitsetBytes <= st.AdaptiveBytes {
		t.Fatalf("storage stats wrong: %+v", st)
	}
	if st.PrefixCharsStepped >= st.PrefixCharsTotal {
		t.Fatalf("prefix sharing stats wrong: %+v", st)
	}
	if st.AcceptListNodes+st.RejectListNodes+st.WordMaskNodes != st.PDANodes {
		t.Fatalf("storage kind counts don't sum: %+v", st)
	}
}

// TestAdaptiveKindCoverage pins the bench workloads to both ends of the
// adaptive-representation spectrum: the ISO-date regex (xgbench's store
// case) is sparse-heavy — digit and dash states accept a handful of tokens,
// so accept-lists must dominate — while the builtin JSON grammar is
// dense-heavy — string-content states accept almost the whole vocabulary,
// so reject-lists or word masks must appear, along with at least one
// materialized canonical mask for the fused fill fast path.
func TestAdaptiveKindCoverage(t *testing.T) {
	c := NewCompiler(testTokenizer(t))

	sparse, err := c.CompileRegex(`^[0-9]{4}-[0-9]{2}-[0-9]{2}$`)
	if err != nil {
		t.Fatal(err)
	}
	ss := sparse.Stats()
	if ss.AcceptListNodes == 0 {
		t.Fatalf("sparse-heavy regex produced no accept-list nodes: %+v", ss)
	}
	if ss.AcceptListNodes <= ss.RejectListNodes+ss.WordMaskNodes {
		t.Fatalf("sparse-heavy regex not dominated by accept-lists: %+v", ss)
	}

	dense := mustCompileJSON(t)
	ds := dense.Stats()
	if ds.RejectListNodes+ds.WordMaskNodes == 0 {
		t.Fatalf("dense-heavy JSON grammar produced no reject-list or word-mask nodes: %+v", ds)
	}
	// The fused-fill fast path needs canonical word masks: word-mask nodes
	// alias theirs for free, reject-list nodes materialize under the byte
	// budget (counted in CanonicalBytes). Either way some must exist.
	if ds.WordMaskNodes == 0 && ds.CanonicalBytes == 0 {
		t.Fatalf("dense-heavy JSON grammar has no canonical masks: %+v", ds)
	}
}

func TestTrainTokenizerAndEncode(t *testing.T) {
	info := TrainTokenizer("hello world hello world hello json", 300)
	// The tiny corpus exhausts merge candidates before 300; the base
	// alphabet (specials + 256 bytes) plus some merges must be present.
	if info.VocabSize() < 260 || info.VocabSize() > 300 {
		t.Fatalf("vocab = %d", info.VocabSize())
	}
	ids := info.Encode("hello world")
	if len(ids) == 0 || info.Decode(ids) != "hello world" {
		t.Fatal("encode/decode round trip failed")
	}
	if info.Raw() == nil {
		t.Fatal("Raw returned nil")
	}
}

func TestCompileJSONSchemaPublic(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileJSONSchema([]byte(`{
		"type": "object",
		"properties": {"ok": {"type": "boolean"}},
		"required": ["ok"]
	}`), SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(cg)
	if err := m.AcceptString(`{"ok": true}`); err != nil {
		t.Fatal(err)
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate")
	}
	if _, err := NewCompiler(info).CompileJSONSchema([]byte(`{"allOf": []}`), SchemaOptions{}); err == nil {
		t.Fatal("unsupported schema compiled")
	}
}
